// Physics-fidelity demo (the paper's Fig 14): compress a crystalline
// trajectory at increasing error bounds and check how well the decompressed
// data preserves the radial distribution function g(r) — the local-density
// statistic downstream analyses depend on.
package main

import (
	"fmt"
	"log"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/gen"
	"github.com/mdz/mdz/internal/metrics"
)

func main() {
	d, err := gen.Generate("Copper-B", gen.Options{Snapshots: 30, Atoms: 1372})
	if err != nil {
		log.Fatal(err)
	}
	box := d.Meta.Box
	last := d.Frames[d.M()-1]
	rMax := box / 2
	const bins = 50
	r, gOrig, err := metrics.RDF(last.X, last.Y, last.Z, box, rMax, bins)
	if err != nil {
		log.Fatal(err)
	}

	frames := make([]mdz.Frame, d.M())
	for i, f := range d.Frames {
		frames[i] = mdz.Frame{X: f.X, Y: f.Y, Z: f.Z}
	}

	fmt.Println("eps      CR     mean|dg(r)|  verdict")
	for _, eps := range []float64{1e-4, 1e-3, 5e-3, 1e-2} {
		stream, err := mdz.Compress(frames, mdz.Config{ErrorBound: eps})
		if err != nil {
			log.Fatal(err)
		}
		restored, err := mdz.Decompress(stream)
		if err != nil {
			log.Fatal(err)
		}
		rl := restored[len(restored)-1]
		_, gDec, err := metrics.RDF(rl.X, rl.Y, rl.Z, box, rMax, bins)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := metrics.RDFDistance(gOrig, gDec)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "faithful"
		if dist > 0.05 {
			verdict = "distorted"
		}
		raw := d.SizeBytes()
		fmt.Printf("%-8.0e %-6.1f %-12.4f %s\n",
			eps, float64(raw)/float64(len(stream)), dist, verdict)
	}

	// Show the first peak of the original RDF for context.
	peakR, peakG := 0.0, 0.0
	for i := range gOrig {
		if gOrig[i] > peakG {
			peakG, peakR = gOrig[i], r[i]
		}
	}
	fmt.Printf("\noriginal RDF first peak: g(%.2f) = %.1f (FCC nearest-neighbor shell)\n", peakR, peakG)
}
