// In-situ compression demo: run a real Lennard-Jones MD simulation with the
// internal engine and compress snapshots inline as they are produced —
// the execution model of the paper's LAMMPS integration (§VII-D), where
// batches of BS snapshots are compressed to avoid out-of-memory buffering.
package main

import (
	"fmt"
	"log"
	"math"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/sim"
)

func main() {
	// 4x4x4 FCC cells of LJ liquid at T* = 1.0.
	pos, box := sim.FCC(6, 6, 6, 1.71)
	s := sim.NewSystem(box, pos, 3)
	s.Pair = sim.NewLJ(1, 1, 2.5)
	s.Thermo = sim.Langevin
	s.Temp = 1.0
	s.Gamma = 1
	s.Dt = 0.004
	s.InitVelocities(1.4)
	s.Run(200) // melt + equilibrate
	fmt.Printf("LJ liquid: %d atoms, T*=%.2f after equilibration\n", s.N(), s.Temperature())

	c, err := mdz.NewCompressor(mdz.Config{ErrorBound: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	const (
		batches   = 6
		bs        = 10
		saveEvery = 5
	)
	var stream [][]byte
	var originals []mdz.Frame
	for b := 0; b < batches; b++ {
		batch := make([]mdz.Frame, bs)
		for t := 0; t < bs; t++ {
			s.Run(saveEvery)
			x, y, z := s.Snapshot()
			batch[t] = mdz.Frame{X: x, Y: y, Z: z}
		}
		blk, err := c.CompressBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, blk)
		originals = append(originals, batch...)
		raw := bs * s.N() * 3 * 8
		fmt.Printf("batch %d: %6d -> %6d bytes (CR %.1f, methods %v)\n",
			b, raw, len(blk), float64(raw)/float64(len(blk)), c.Methods())
	}

	// Decompress everything and check physics-level fidelity: per-atom
	// displacement error.
	d := mdz.NewDecompressor()
	var restored []mdz.Frame
	for _, blk := range stream {
		batch, err := d.DecompressBatch(blk)
		if err != nil {
			log.Fatal(err)
		}
		restored = append(restored, batch...)
	}
	var worst float64
	for t := range originals {
		for i := 0; i < s.N(); i++ {
			dx := originals[t].X[i] - restored[t].X[i]
			dy := originals[t].Y[i] - restored[t].Y[i]
			dz := originals[t].Z[i] - restored[t].Z[i]
			if r := math.Sqrt(dx*dx + dy*dy + dz*dz); r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("max atom displacement error: %.2e (box edge %.1f)\n", worst, box.L.X)
}
