// Adaptive selection demo: a trajectory whose regime changes mid-run — a
// crystalline vibration phase (VQ/VQT territory) followed by a melt into a
// smooth-drifting liquid (MT territory). The streaming Compressor's ADP
// logic re-evaluates and switches methods, and this example prints which
// concrete method each axis uses over time (the paper's Fig 10 behaviour).
package main

import (
	"fmt"
	"log"
	"math/rand"

	mdz "github.com/mdz/mdz"
)

func main() {
	const (
		n       = 800
		perlife = 30 // snapshots per phase
	)
	rng := rand.New(rand.NewSource(2))

	// Phase 1: erratic crystal — atoms re-randomize their level every
	// snapshot (time prediction useless, spatial levels strong).
	var frames []mdz.Frame
	for t := 0; t < perlife; t++ {
		f := newFrame(n)
		for i := 0; i < n; i++ {
			f.X[i] = 2.0*float64(rng.Intn(12)) + rng.NormFloat64()*0.02
			f.Y[i] = 2.0*float64(rng.Intn(12)) + rng.NormFloat64()*0.02
			f.Z[i] = 2.0*float64(rng.Intn(12)) + rng.NormFloat64()*0.02
		}
		frames = append(frames, f)
	}
	// Phase 2: smooth liquid drift (time prediction dominates).
	pos := make([][3]float64, n)
	for i := range pos {
		pos[i] = [3]float64{rng.Float64() * 24, rng.Float64() * 24, rng.Float64() * 24}
	}
	for t := 0; t < perlife; t++ {
		f := newFrame(n)
		for i := 0; i < n; i++ {
			pos[i][0] += rng.NormFloat64() * 0.002
			pos[i][1] += rng.NormFloat64() * 0.002
			pos[i][2] += rng.NormFloat64() * 0.002
			f.X[i], f.Y[i], f.Z[i] = pos[i][0], pos[i][1], pos[i][2]
		}
		frames = append(frames, f)
	}

	c, err := mdz.NewCompressor(mdz.Config{
		ErrorBound:    1e-3,
		AdaptInterval: 2, // re-evaluate frequently for the demo
	})
	if err != nil {
		log.Fatal(err)
	}
	d := mdz.NewDecompressor()
	fmt.Println("batch  phase    methods(x/y/z)  CR")
	for bi, batch := range mdz.Batch(frames, 10) {
		blk, err := c.CompressBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := d.DecompressBatch(blk); err != nil {
			log.Fatal(err)
		}
		phase := "crystal"
		if bi >= perlife/10 {
			phase = "liquid"
		}
		m := c.Methods()
		raw := len(batch) * n * 3 * 8
		fmt.Printf("%-6d %-8s %-15v %.1f\n",
			bi, phase, fmt.Sprintf("%v/%v/%v", m[0], m[1], m[2]), float64(raw)/float64(len(blk)))
	}
	raw, comp := c.Stats()
	fmt.Printf("\noverall: %d -> %d bytes (CR %.1f)\n", raw, comp, float64(raw)/float64(comp))
}

func newFrame(n int) mdz.Frame {
	return mdz.Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
}
