// Quickstart: compress and decompress an in-memory trajectory with the
// public mdz API, verify the error bound, and print the compression ratio.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdz "github.com/mdz/mdz"
)

func main() {
	// Build a toy trajectory: 1000 particles vibrating around a crystal
	// lattice for 40 snapshots.
	const (
		nParticles = 1000
		nSnapshots = 40
	)
	rng := rand.New(rand.NewSource(1))
	site := make([][3]float64, nParticles)
	for i := range site {
		site[i] = [3]float64{
			float64(rng.Intn(10)) * 2.5,
			float64(rng.Intn(10)) * 2.5,
			float64(rng.Intn(10)) * 2.5,
		}
	}
	frames := make([]mdz.Frame, nSnapshots)
	for t := range frames {
		f := mdz.Frame{
			X: make([]float64, nParticles),
			Y: make([]float64, nParticles),
			Z: make([]float64, nParticles),
		}
		for i := 0; i < nParticles; i++ {
			f.X[i] = site[i][0] + rng.NormFloat64()*0.02
			f.Y[i] = site[i][1] + rng.NormFloat64()*0.02
			f.Z[i] = site[i][2] + rng.NormFloat64()*0.02
		}
		frames[t] = f
	}

	// Compress with the paper's defaults: adaptive method selection (ADP),
	// value-range-based error bound ε = 1E-3, buffer size 10.
	cfg := mdz.Config{ErrorBound: 1e-3}
	stream, err := mdz.Compress(frames, cfg)
	if err != nil {
		log.Fatal(err)
	}
	raw := nSnapshots * nParticles * 3 * 8
	fmt.Printf("compressed %d snapshots x %d particles: %d -> %d bytes (CR %.1f)\n",
		nSnapshots, nParticles, raw, len(stream), float64(raw)/float64(len(stream)))

	// Decompress and verify every coordinate is within the bound.
	restored, err := mdz.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for t := range frames {
		for i := 0; i < nParticles; i++ {
			for _, d := range []float64{
				frames[t].X[i] - restored[t].X[i],
				frames[t].Y[i] - restored[t].Y[i],
				frames[t].Z[i] - restored[t].Z[i],
			} {
				if a := math.Abs(d); a > worst {
					worst = a
				}
			}
		}
	}
	// The guarantee is per axis: ε times that axis's value range (measured
	// on the first buffer). Compute the loosest axis bound for display.
	bound := 0.0
	for axis := 0; axis < 3; axis++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, f := range frames[:10] {
			vals := [3][]float64{f.X, f.Y, f.Z}[axis]
			for _, v := range vals {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
		if b := 1e-3 * (hi - lo); b > bound {
			bound = b
		}
	}
	fmt.Printf("max reconstruction error: %.4g  (guaranteed bound: %.4g)\n", worst, bound)
	if worst > bound {
		log.Fatal("error bound violated!")
	}
}
