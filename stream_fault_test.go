package mdz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"testing"

	"github.com/mdz/mdz/internal/faultio"
)

// streamFrameMeta locates one v2 frame inside a stream image.
type streamFrameMeta struct {
	off  int // absolute offset of the sync marker
	typ  byte
	seq  uint32
	size int // total wire size
	pay  int // payload offset (absolute)
	plen int
}

// parseV2Frames walks a clean v2-framed stream image (v2 or v3 magic) and
// indexes its frames.
func parseV2Frames(t *testing.T, data []byte) []streamFrameMeta {
	t.Helper()
	if len(data) < 4 || (string(data[:4]) != streamMagicV2 && string(data[:4]) != streamMagicV3) {
		t.Fatal("not a v2-framed stream")
	}
	var metas []streamFrameMeta
	off := 4
	for off < len(data) {
		if off+frameHeaderSize > len(data) {
			t.Fatalf("trailing garbage at %d", off)
		}
		hdr := data[off : off+frameHeaderSize]
		if !bytes.Equal(hdr[:4], frameSync[:]) {
			t.Fatalf("no sync at %d", off)
		}
		n := int(binary.LittleEndian.Uint32(hdr[9:13]))
		m := streamFrameMeta{
			off: off, typ: hdr[4],
			seq:  binary.LittleEndian.Uint32(hdr[5:9]),
			size: frameHeaderSize + n + frameCRCSize,
			pay:  off + frameHeaderSize, plen: n,
		}
		metas = append(metas, m)
		off += m.size
	}
	return metas
}

// fixPCRC recomputes a frame's payload CRC after the payload was mutated,
// so corruption shows up at the core-block layer instead of the framing
// layer.
func fixPCRC(data []byte, m streamFrameMeta) {
	crc := crc32.Checksum(data[m.pay:m.pay+m.plen], crcTable)
	binary.LittleEndian.PutUint32(data[m.pay+m.plen:], crc)
}

func framesExactEqual(a, b Frame) bool {
	if len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Z[i] != b.Z[i] {
			return false
		}
	}
	return true
}

// matchSubsequence maps each salvaged frame to its index in the clean
// decode, requiring order-preserving exact matches.
func matchSubsequence(clean, salvaged []Frame) ([]int, bool) {
	idx := make([]int, 0, len(salvaged))
	j := 0
	for _, f := range salvaged {
		for j < len(clean) && !framesExactEqual(clean[j], f) {
			j++
		}
		if j == len(clean) {
			return nil, false
		}
		idx = append(idx, j)
		j++
	}
	return idx, true
}

// faultCase is one deterministic corruption of a clean stream image.
type faultCase struct {
	name string
	// mutate damages the stream image given its frame index.
	mutate func(data []byte, metas []streamFrameMeta) []byte
	// lost lists the snapshot indices expected to be unrecoverable, or
	// nil when the exact set depends on layout (then only subsequence and
	// accounting invariants are checked).
	lost func(metas []streamFrameMeta) []int
	// truncated marks cases that cut the stream (no trailer survives).
	truncated bool
}

func dataFrames(metas []streamFrameMeta) []streamFrameMeta {
	var out []streamFrameMeta
	for _, m := range metas {
		if m.typ == frameData {
			out = append(out, m)
		}
	}
	return out
}

func checkpointFrames(metas []streamFrameMeta) []streamFrameMeta {
	var out []streamFrameMeta
	for _, m := range metas {
		if m.typ == frameCheckpoint {
			out = append(out, m)
		}
	}
	return out
}

// TestStreamFaultMatrix drives Writer→fault→Reader round-trips across
// methods and shard counts, asserting that un-corrupted regions decode
// byte-identically to a clean run, that error bounds hold on every
// salvaged frame, and that the reader fails typed — never panics — in
// strict mode.
func TestStreamFaultMatrix(t *testing.T) {
	const (
		numFrames = 24
		particles = 120
		bufSize   = 2 // → 12 data blocks, checkpoints every 3
		eps       = 1e-3
	)
	cases := []faultCase{
		{
			// Framing-layer corruption of a mid-stream data block: the
			// seeded reader resumes at the very next frame.
			name: "flip-data-frame-payload",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := dataFrames(metas)[4]
				return faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: int64(m.pay + m.plen/2), Bit: 5})
			},
			lost: func(metas []streamFrameMeta) []int { return []int{8, 9} },
		},
		{
			// Same flip with the framing CRC patched up, so the damage is
			// only caught by the core block's own checksum.
			name: "flip-data-core-level",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := dataFrames(metas)[4]
				out := faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: int64(m.pay + m.plen/2), Bit: 5})
				fixPCRC(out, m)
				return out
			},
			lost: func(metas []streamFrameMeta) []int { return []int{8, 9} },
		},
		{
			// Corrupting block 0 destroys the decoder's seed: intact
			// blocks must be skipped until the first checkpoint reseeds.
			name: "corrupt-seed-block",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := dataFrames(metas)[0]
				return faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: int64(m.pay + 3), Bit: 0})
			},
			lost: func(metas []streamFrameMeta) []int { return []int{0, 1, 2, 3, 4, 5} },
		},
		{
			// A corrupt checkpoint costs nothing when decoding is healthy.
			name: "corrupt-checkpoint",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := checkpointFrames(metas)[0]
				return faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: int64(m.pay + 1), Bit: 2})
			},
			lost: func(metas []streamFrameMeta) []int { return nil },
		},
		{
			// Torn write: stream cut mid-frame, clean prefix survives.
			name: "truncate-mid-frame",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := dataFrames(metas)[8]
				return faultio.Corrupt(data, faultio.Fault{Kind: faultio.Truncate, Offset: int64(m.off + 5)})
			},
			lost: func(metas []streamFrameMeta) []int {
				return []int{16, 17, 18, 19, 20, 21, 22, 23}
			},
			truncated: true,
		},
		{
			// Zeroed span across a frame boundary kills both neighbors.
			name: "zero-across-boundary",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := dataFrames(metas)[7]
				return faultio.Corrupt(data, faultio.Fault{Kind: faultio.ZeroRange, Offset: int64(m.off - 4), Len: 10})
			},
			lost: func(metas []streamFrameMeta) []int { return []int{12, 13, 14, 15} },
		},
		{
			// A whole frame vanishes (lost extent): the sequence gap is
			// detected even though every surviving frame is intact.
			name: "splice-out-frame",
			mutate: func(data []byte, metas []streamFrameMeta) []byte {
				m := dataFrames(metas)[5]
				out := append([]byte(nil), data[:m.off]...)
				return append(out, data[m.off+m.size:]...)
			},
			lost: func(metas []streamFrameMeta) []int { return []int{10, 11} },
		},
	}

	for _, method := range []Method{VQ, VQT, MT, ADP} {
		for _, shards := range []int{1, 4} {
			cfg := Config{
				ErrorBound: eps, Mode: Absolute, Method: method,
				BufferSize: bufSize, CheckpointInterval: 3,
				Workers: 2, Shards: shards,
			}
			orig := makeFrames(numFrames, particles, 55)
			var buf bytes.Buffer
			w, err := NewWriter(&buf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range orig {
				if err := w.WriteFrame(f); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			stream := buf.Bytes()
			metas := parseV2Frames(t, stream)

			clean, err := NewReaderWorkers(bytes.NewReader(stream), 2).ReadAll()
			if err != nil {
				t.Fatalf("%v/%d: clean decode: %v", method, shards, err)
			}
			if len(clean) != numFrames {
				t.Fatalf("%v/%d: clean decode yielded %d frames", method, shards, len(clean))
			}

			for _, tc := range cases {
				name := fmt.Sprintf("%v/shards=%d/%s", method, shards, tc.name)
				t.Run(name, func(t *testing.T) {
					corrupt := tc.mutate(append([]byte(nil), stream...), metas)

					// Strict mode: typed failure, never a panic.
					_, serr := NewReaderWorkers(bytes.NewReader(corrupt), 2).ReadAll()
					if serr == nil {
						t.Fatal("strict reader accepted corrupt stream")
					}
					if !errors.Is(serr, ErrCorruptBlock) && !errors.Is(serr, ErrTruncated) && !errors.Is(serr, ErrStateDesync) {
						t.Fatalf("strict reader error not typed: %v", serr)
					}

					// Resync mode: salvage and account.
					r := NewReaderWith(bytes.NewReader(corrupt), ReaderOptions{Workers: 2, Resync: true})
					salvaged, err := r.ReadAll()
					if err != nil {
						t.Fatalf("resync reader failed hard: %v", err)
					}
					idx, ok := matchSubsequence(clean, salvaged)
					if !ok {
						t.Fatal("salvaged output is not a clean-run subsequence (checkpointed region not byte-identical)")
					}
					// Error bounds hold on every salvaged frame.
					for k, ci := range idx {
						of, sf := orig[ci], salvaged[k]
						for i := range of.X {
							if math.Abs(of.X[i]-sf.X[i]) > eps+1e-12 ||
								math.Abs(of.Y[i]-sf.Y[i]) > eps+1e-12 ||
								math.Abs(of.Z[i]-sf.Z[i]) > eps+1e-12 {
								t.Fatalf("bound violated on salvaged frame %d (clean %d)", k, ci)
							}
						}
					}

					stats := r.SalvageStats()
					if want := tc.lost(metas); want != nil {
						lost := map[int]bool{}
						for _, s := range want {
							lost[s] = true
						}
						var expect []int
						for ci := range clean {
							if !lost[ci] {
								expect = append(expect, ci)
							}
						}
						if len(idx) != len(expect) {
							t.Fatalf("salvaged %d frames, want %d (stats %+v)", len(idx), len(expect), stats)
						}
						for k := range idx {
							if idx[k] != expect[k] {
								t.Fatalf("salvaged frame %d maps to clean %d, want %d", k, idx[k], expect[k])
							}
						}
						if !tc.truncated && stats.DroppedFrames != len(want) {
							t.Errorf("DroppedFrames = %d, want %d", stats.DroppedFrames, len(want))
						}
					}
					if tc.truncated != stats.Truncated {
						t.Errorf("Truncated = %v, want %v", stats.Truncated, tc.truncated)
					}
					if lostAny := len(clean) != len(salvaged); lostAny {
						if len(stats.LostRanges) == 0 && !stats.Truncated {
							t.Error("frames lost but LostRanges empty")
						}
					}
					if tc.name != "splice-out-frame" {
						if stats.FirstError == nil {
							t.Error("FirstError not recorded")
						} else if stats.FirstError.Offset < 4 || stats.FirstError.Offset > int64(len(corrupt)) {
							t.Errorf("FirstError offset %d out of stream", stats.FirstError.Offset)
						}
						if stats.CorruptFrames == 0 && !tc.truncated {
							t.Error("CorruptFrames = 0 on a corrupt stream")
						}
					}
				})
			}
		}
	}
}

// TestStreamFaultIOError checks that a hard mid-stream I/O failure is
// surfaced as-is — not mistaken for EOF or corruption — in both modes.
func TestStreamFaultIOError(t *testing.T) {
	frames := makeFrames(8, 60, 9)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, Mode: Absolute, BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cut := int64(buf.Len() / 2)
	for _, resync := range []bool{false, true} {
		src := faultio.NewReader(bytes.NewReader(buf.Bytes()), faultio.Fault{Kind: faultio.Error, Offset: cut}).Fragment(3)
		r := NewReaderWith(src, ReaderOptions{Resync: resync})
		_, err := r.ReadAll()
		if !errors.Is(err, faultio.ErrInjected) {
			t.Errorf("resync=%v: err = %v, want ErrInjected", resync, err)
		}
	}
}

// TestStreamFragmentedSource checks the reader against a source that
// returns one short read after another (torn network reads): the decoded
// stream must be identical to a single-shot read.
func TestStreamFragmentedSource(t *testing.T) {
	frames := makeFrames(10, 80, 21)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 3, CheckpointInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	src := faultio.NewReader(bytes.NewReader(buf.Bytes())).Fragment(4)
	got, err := NewReader(src).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fragmented read yielded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !framesExactEqual(want[i], got[i]) {
			t.Fatalf("frame %d diverged under fragmented reads", i)
		}
	}
}
