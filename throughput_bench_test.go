package mdz

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// Throughput microbenchmarks for the sharded parallel pipeline. Unlike the
// paper-experiment benchmarks (bench_test.go), these measure the hot path
// directly: bytes/op and allocs/op across worker and shard counts.
//
//	go test -bench 'CompressBatch|DecompressBatch' -benchmem .

const (
	benchParticles = 131072 // large enough for DefaultShards to fan out (K=8)
	benchSnapshots = 5
)

var benchFrames = sync.OnceValue(func() []Frame {
	return makeFrames(benchSnapshots, benchParticles, 7)
})

func benchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

func BenchmarkCompressBatch(b *testing.B) {
	frames := benchFrames()
	rawBytes := int64(benchSnapshots * benchParticles * 3 * 8)
	for _, shards := range []int{1, 0} { // 0 = auto (K=8 at this size)
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				c, err := NewCompressor(Config{ErrorBound: 1e-3, Shards: shards, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				// Warm the adaptive state and scratch pools outside the timer.
				if _, err := c.CompressBatch(frames); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(rawBytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.CompressBatch(frames); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompressBatchTelemetry measures the instrumented hot path under
// the same load as BenchmarkCompressBatch's auto-shard case. Comparing the
// two quantifies the telemetry overhead (acceptance: ≤2% throughput):
//
//	go test -bench 'CompressBatch(Telemetry)?/shards=0' -benchtime 3s .
func BenchmarkCompressBatchTelemetry(b *testing.B) {
	frames := benchFrames()
	rawBytes := int64(benchSnapshots * benchParticles * 3 * 8)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("shards=0/workers=%d", workers), func(b *testing.B) {
			c, err := NewCompressor(Config{ErrorBound: 1e-3, Workers: workers, Telemetry: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.CompressBatch(frames); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.CompressBatch(frames); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecompressBatch(b *testing.B) {
	frames := benchFrames()
	rawBytes := int64(benchSnapshots * benchParticles * 3 * 8)
	for _, shards := range []int{1, 0} {
		c, err := NewCompressor(Config{ErrorBound: 1e-3, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		blk, err := c.CompressBatch(frames)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				d := NewDecompressorWorkers(workers)
				if _, err := d.DecompressBatch(blk); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(rawBytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.DecompressBatch(blk); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
