package mdz

import (
	"github.com/mdz/mdz/internal/telemetry"
)

// TelemetryRegistry is the live instrument registry behind a Compressor or
// Decompressor with telemetry enabled. It is what the mdzc metrics endpoint
// scrapes; most callers only need point-in-time snapshots via Telemetry.
// All methods are safe for concurrent use and nil-safe (a nil registry is
// the disabled state).
type TelemetryRegistry = telemetry.Registry

// TelemetrySnapshot is a point-in-time copy of every counter, gauge and
// histogram. It marshals to stable JSON (sorted keys) for machine-readable
// run reports.
type TelemetrySnapshot = telemetry.Snapshot

// Telemetry returns a snapshot of the compressor's instruments: per-stage
// wall time (k-means fit, fused predict+quantize, Huffman, lossless
// backend), per-axis ADP evaluation/win/transition counts, quantization
// scope counters (compress.quant.values / .outliers), Huffman table
// overhead, lossless byte flow and pool utilization. Nil when the
// Compressor was built without Config.Telemetry.
func (c *Compressor) Telemetry() *TelemetrySnapshot { return c.reg.Snapshot() }

// TelemetryRegistry exposes the live registry (nil when telemetry is
// disabled), for callers that serve metrics continuously instead of reading
// snapshots.
func (c *Compressor) TelemetryRegistry() *TelemetryRegistry { return c.reg }

// Telemetry returns a snapshot of the decompressor's instruments (decode
// stage timings, lossless byte flow, pool utilization). Nil when built
// without DecompressorOptions.Telemetry.
func (d *Decompressor) Telemetry() *TelemetrySnapshot { return d.reg.Snapshot() }

// TelemetryRegistry exposes the decompressor's live registry (nil when
// telemetry is disabled).
func (d *Decompressor) TelemetryRegistry() *TelemetryRegistry { return d.reg }

// Telemetry returns a snapshot of the stream writer's instruments — the
// embedded Compressor's pipeline metrics plus container accounting
// (stream.frames, stream.checkpoints, stream.framing.bytes,
// stream.checkpoint.bytes). Nil when Config.Telemetry was off.
func (w *Writer) Telemetry() *TelemetrySnapshot { return w.c.reg.Snapshot() }

// TelemetryRegistry exposes the stream writer's live registry (nil when
// telemetry is disabled).
func (w *Writer) TelemetryRegistry() *TelemetryRegistry { return w.c.reg }

// Telemetry returns a snapshot of the stream reader's instruments — the
// embedded Decompressor's decode metrics plus live mirrors of the
// SalvageStats counters (stream.corrupt_frames, stream.resyncs,
// stream.skipped.bytes, stream.skipped_blocks, stream.dropped_frames,
// stream.truncations). Nil when ReaderOptions.Telemetry was off.
func (r *Reader) Telemetry() *TelemetrySnapshot { return r.d.reg.Snapshot() }

// TelemetryRegistry exposes the stream reader's live registry (nil when
// telemetry is disabled).
func (r *Reader) TelemetryRegistry() *TelemetryRegistry { return r.d.reg }
