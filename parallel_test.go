package mdz

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
)

// TestWorkerCountInvariance: output bytes must be a pure function of
// (input, config, shard count) — never of the worker pool size.
func TestWorkerCountInvariance(t *testing.T) {
	frames := makeFrames(20, 600, 51)
	for _, shards := range []int{0, 1, 3, 7} {
		var want []byte
		for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0) + 2} {
			c, err := NewCompressor(Config{ErrorBound: 1e-3, Shards: shards, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var got []byte
			for _, b := range Batch(frames, 10) {
				blk, err := c.CompressBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, blk...)
			}
			if want == nil {
				want = got
			} else if !bytes.Equal(want, got) {
				t.Fatalf("shards=%d: workers=%d output differs from workers=1", shards, workers)
			}
		}
	}
}

// TestWorkerCountInvarianceRepeatedRuns: repeated compression of the same
// input under a parallel pool yields identical bytes run after run.
func TestWorkerCountInvarianceRepeatedRuns(t *testing.T) {
	frames := makeFrames(10, 400, 52)
	var want []byte
	for run := 0; run < 5; run++ {
		c, _ := NewCompressor(Config{ErrorBound: 1e-3, Shards: 4, Workers: 8})
		blk, err := c.CompressBatch(frames)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blk
		} else if !bytes.Equal(want, blk) {
			t.Fatalf("run %d produced different bytes", run)
		}
	}
}

// TestShardRoundTripGrid runs round-trip + error-bound checks over every
// (method, workers, shards) combination, decoding with both serial and
// parallel decompressors.
func TestShardRoundTripGrid(t *testing.T) {
	frames := makeFrames(20, 300, 53)
	const eb = 1e-3
	for _, m := range []Method{ADP, VQ, VQT, MT} {
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{0, 1, 2, 5} {
				name := fmt.Sprintf("method=%v/workers=%d/shards=%d", m, workers, shards)
				c, err := NewCompressor(Config{
					ErrorBound: eb, Mode: Absolute, Method: m,
					Workers: workers, Shards: shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				d := NewDecompressorWorkers(workers)
				var got []Frame
				for _, b := range Batch(frames, 10) {
					blk, err := c.CompressBatch(b)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					out, err := d.DecompressBatch(blk)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got = append(got, out...)
				}
				if len(got) != len(frames) {
					t.Fatalf("%s: %d frames, want %d", name, len(got), len(frames))
				}
				for ti := range frames {
					for axis := 0; axis < 3; axis++ {
						w := axisSeries(frames[ti:ti+1], axis)[0]
						h := axisSeries(got[ti:ti+1], axis)[0]
						for i := range w {
							if e := math.Abs(w[i] - h[i]); e > eb {
								t.Fatalf("%s: axis %d frame %d particle %d: error %v", name, axis, ti, i, e)
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedBlocksUseFormatV2 checks the inner per-axis block version:
// single-shard blocks must keep the legacy version-1 layout, multi-shard
// blocks must carry version 2.
func TestShardedBlocksUseFormatV2(t *testing.T) {
	frames := makeFrames(10, 200, 54)
	for _, tc := range []struct {
		shards  int
		wantVer byte
	}{{1, 1}, {0, 1} /* 200 particles → auto K=1 */, {4, 2}} {
		c, _ := NewCompressor(Config{ErrorBound: 1e-3, Shards: tc.shards})
		blk, err := c.CompressBatch(frames)
		if err != nil {
			t.Fatal(err)
		}
		// Outer layout: "MDZS" | 3 × section(core block) | CRC32 footer.
		// Each core block starts with "MDZB" followed by the version byte.
		sec := blk[4:]
		// Skip the uvarint section length (single byte for small blocks is
		// not guaranteed, so scan for the core magic instead).
		idx := bytes.Index(sec, []byte("MDZB"))
		if idx < 0 {
			t.Fatal("core block magic not found")
		}
		if ver := sec[idx+4]; ver != tc.wantVer {
			t.Errorf("shards=%d: block version %d, want %d", tc.shards, ver, tc.wantVer)
		}
	}
}

// TestSeedFormatBlockStillDecodes decodes a block written by the
// pre-sharding seed implementation (testdata fixture) and checks both the
// error bound and that the current encoder reproduces it byte-for-byte
// with Shards=1.
func TestSeedFormatBlockStillDecodes(t *testing.T) {
	seedBlk, err := os.ReadFile("testdata/seed_block_v1.bin")
	if err != nil {
		t.Skipf("fixture unavailable: %v", err)
	}
	frames := makeFrames(10, 500, 77) // exactly what generated the fixture
	d := NewDecompressor()
	got, err := d.DecompressBatch(seedBlk)
	if err != nil {
		t.Fatalf("seed-format block rejected: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	eps := 1e-3
	for axis := 0; axis < 3; axis++ {
		bound := eps * frameRange(frames, axis)
		if bound == 0 {
			bound = eps
		}
		for ti := range frames {
			w := axisSeries(frames[ti:ti+1], axis)[0]
			h := axisSeries(got[ti:ti+1], axis)[0]
			for i := range w {
				if e := math.Abs(w[i] - h[i]); e > bound+1e-15 {
					t.Fatalf("axis %d frame %d particle %d: error %v > %v", axis, ti, i, e, bound)
				}
			}
		}
	}
	// Byte-for-byte reproduction of the legacy layout with Shards=1.
	c, _ := NewCompressor(Config{ErrorBound: eps, Shards: 1})
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk, seedBlk) {
		t.Error("Shards=1 output differs from the seed-format fixture")
	}
}

// TestTruncatedFooter: blocks cut inside the CRC footer (or shorter) must
// fail with a clean error, not a slice panic.
func TestTruncatedFooter(t *testing.T) {
	frames := makeFrames(5, 80, 55)
	c, _ := NewCompressor(Config{ErrorBound: 1e-3})
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecompressor()
	for cut := 0; cut <= 8; cut++ {
		trunc := blk[:len(blk)-cut]
		if cut == 0 {
			if _, err := d.DecompressBatch(trunc); err != nil {
				t.Fatalf("pristine block rejected: %v", err)
			}
			continue
		}
		if _, err := NewDecompressor().DecompressBatch(trunc); err == nil {
			t.Errorf("cut=%d: truncated block accepted", cut)
		}
	}
	for _, n := range []int{0, 1, 4, 5, 7} {
		if _, err := NewDecompressor().DecompressBatch(blk[:n]); err == nil {
			t.Errorf("len=%d: truncated block accepted", n)
		}
	}
}

// TestConcurrentCompressorsSharedDecompressorPool hammers one Compressor
// per goroutine, each with internal shard/ADP parallelism, against a shared
// sync.Pool of Decompressors — the pattern a multi-stream ingest server
// would use. Run under -race this exercises the pool and scratch-buffer
// sharing across goroutines. VQ keeps blocks self-contained so pooled
// (stateful) decompressors can be reused across streams.
func TestConcurrentCompressorsSharedDecompressorPool(t *testing.T) {
	dpool := sync.Pool{New: func() any { return NewDecompressor() }}
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			frames := makeFrames(12, 257, int64(100+g))
			c, err := NewCompressor(Config{
				ErrorBound: 1e-3, Mode: Absolute, Method: VQ,
				Workers: 4, Shards: 3,
			})
			if err != nil {
				errc <- err
				return
			}
			for _, b := range Batch(frames, 4) {
				blk, err := c.CompressBatch(b)
				if err != nil {
					errc <- err
					return
				}
				d := dpool.Get().(*Decompressor)
				out, err := d.DecompressBatch(blk)
				dpool.Put(d)
				if err != nil {
					errc <- err
					return
				}
				for ti := range b {
					for i := range b[ti].X {
						if math.Abs(b[ti].X[i]-out[ti].X[i]) > 1e-3 {
							errc <- fmt.Errorf("goroutine %d: bound violated", g)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
