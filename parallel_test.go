package mdz

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/mdz/mdz/internal/pool"
)

// TestWorkerCountInvariance: output bytes must be a pure function of
// (input, config, shard count) — never of the worker pool size.
func TestWorkerCountInvariance(t *testing.T) {
	frames := makeFrames(20, 600, 51)
	for _, shards := range []int{0, 1, 3, 7} {
		var want []byte
		for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0) + 2} {
			c, err := NewCompressor(Config{ErrorBound: 1e-3, Shards: shards, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var got []byte
			for _, b := range Batch(frames, 10) {
				blk, err := c.CompressBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, blk...)
			}
			if want == nil {
				want = got
			} else if !bytes.Equal(want, got) {
				t.Fatalf("shards=%d: workers=%d output differs from workers=1", shards, workers)
			}
		}
	}
}

// TestWorkerCountInvarianceRepeatedRuns: repeated compression of the same
// input under a parallel pool yields identical bytes run after run.
func TestWorkerCountInvarianceRepeatedRuns(t *testing.T) {
	frames := makeFrames(10, 400, 52)
	var want []byte
	for run := 0; run < 5; run++ {
		c, _ := NewCompressor(Config{ErrorBound: 1e-3, Shards: 4, Workers: 8})
		blk, err := c.CompressBatch(frames)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blk
		} else if !bytes.Equal(want, blk) {
			t.Fatalf("run %d produced different bytes", run)
		}
	}
}

// TestShardRoundTripGrid runs round-trip + error-bound checks over every
// (method, workers, shards) combination, decoding with both serial and
// parallel decompressors.
func TestShardRoundTripGrid(t *testing.T) {
	frames := makeFrames(20, 300, 53)
	const eb = 1e-3
	for _, m := range []Method{ADP, VQ, VQT, MT} {
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{0, 1, 2, 5} {
				name := fmt.Sprintf("method=%v/workers=%d/shards=%d", m, workers, shards)
				c, err := NewCompressor(Config{
					ErrorBound: eb, Mode: Absolute, Method: m,
					Workers: workers, Shards: shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				d := NewDecompressorWorkers(workers)
				var got []Frame
				for _, b := range Batch(frames, 10) {
					blk, err := c.CompressBatch(b)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					out, err := d.DecompressBatch(blk)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got = append(got, out...)
				}
				if len(got) != len(frames) {
					t.Fatalf("%s: %d frames, want %d", name, len(got), len(frames))
				}
				for ti := range frames {
					for axis := 0; axis < 3; axis++ {
						w := axisSeries(frames[ti:ti+1], axis)[0]
						h := axisSeries(got[ti:ti+1], axis)[0]
						for i := range w {
							if e := math.Abs(w[i] - h[i]); e > eb {
								t.Fatalf("%s: axis %d frame %d particle %d: error %v", name, axis, ti, i, e)
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedBlocksUseFormatV2 checks the inner per-axis block version:
// single-shard blocks must keep the legacy version-1 layout, multi-shard
// blocks must carry version 2.
func TestShardedBlocksUseFormatV2(t *testing.T) {
	frames := makeFrames(10, 200, 54)
	for _, tc := range []struct {
		shards  int
		wantVer byte
	}{{1, 1}, {0, 1} /* 200 particles → auto K=1 */, {4, 2}} {
		c, _ := NewCompressor(Config{ErrorBound: 1e-3, Shards: tc.shards})
		blk, err := c.CompressBatch(frames)
		if err != nil {
			t.Fatal(err)
		}
		// Outer layout: "MDZS" | 3 × section(core block) | CRC32 footer.
		// Each core block starts with "MDZB" followed by the version byte.
		sec := blk[4:]
		// Skip the uvarint section length (single byte for small blocks is
		// not guaranteed, so scan for the core magic instead).
		idx := bytes.Index(sec, []byte("MDZB"))
		if idx < 0 {
			t.Fatal("core block magic not found")
		}
		if ver := sec[idx+4]; ver != tc.wantVer {
			t.Errorf("shards=%d: block version %d, want %d", tc.shards, ver, tc.wantVer)
		}
	}
}

// TestSeedFormatBlockStillDecodes decodes a block written by the
// pre-sharding seed implementation (testdata fixture) and checks both the
// error bound and that the current encoder reproduces it byte-for-byte
// with Shards=1.
func TestSeedFormatBlockStillDecodes(t *testing.T) {
	seedBlk, err := os.ReadFile("testdata/seed_block_v1.bin")
	if err != nil {
		t.Skipf("fixture unavailable: %v", err)
	}
	frames := makeFrames(10, 500, 77) // exactly what generated the fixture
	d := NewDecompressor()
	got, err := d.DecompressBatch(seedBlk)
	if err != nil {
		t.Fatalf("seed-format block rejected: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	eps := 1e-3
	for axis := 0; axis < 3; axis++ {
		bound := eps * frameRange(frames, axis)
		if bound == 0 {
			bound = eps
		}
		for ti := range frames {
			w := axisSeries(frames[ti:ti+1], axis)[0]
			h := axisSeries(got[ti:ti+1], axis)[0]
			for i := range w {
				if e := math.Abs(w[i] - h[i]); e > bound+1e-15 {
					t.Fatalf("axis %d frame %d particle %d: error %v > %v", axis, ti, i, e, bound)
				}
			}
		}
	}
	// Byte-for-byte reproduction of the legacy layout with Shards=1.
	c, _ := NewCompressor(Config{ErrorBound: eps, Shards: 1})
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk, seedBlk) {
		t.Error("Shards=1 output differs from the seed-format fixture")
	}
}

// TestTruncatedFooter: blocks cut inside the CRC footer (or shorter) must
// fail with a clean error, not a slice panic.
func TestTruncatedFooter(t *testing.T) {
	frames := makeFrames(5, 80, 55)
	c, _ := NewCompressor(Config{ErrorBound: 1e-3})
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecompressor()
	for cut := 0; cut <= 8; cut++ {
		trunc := blk[:len(blk)-cut]
		if cut == 0 {
			if _, err := d.DecompressBatch(trunc); err != nil {
				t.Fatalf("pristine block rejected: %v", err)
			}
			continue
		}
		if _, err := NewDecompressor().DecompressBatch(trunc); err == nil {
			t.Errorf("cut=%d: truncated block accepted", cut)
		}
	}
	for _, n := range []int{0, 1, 4, 5, 7} {
		if _, err := NewDecompressor().DecompressBatch(blk[:n]); err == nil {
			t.Errorf("len=%d: truncated block accepted", n)
		}
	}
}

// TestConcurrentCompressorsSharedDecompressorPool hammers one Compressor
// per goroutine, each with internal shard/ADP parallelism, against a shared
// sync.Pool of Decompressors — the pattern a multi-stream ingest server
// would use. Run under -race this exercises the pool and scratch-buffer
// sharing across goroutines. VQ keeps blocks self-contained so pooled
// (stateful) decompressors can be reused across streams.
func TestConcurrentCompressorsSharedDecompressorPool(t *testing.T) {
	dpool := sync.Pool{New: func() any { return NewDecompressor() }}
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			frames := makeFrames(12, 257, int64(100+g))
			c, err := NewCompressor(Config{
				ErrorBound: 1e-3, Mode: Absolute, Method: VQ,
				Workers: 4, Shards: 3,
			})
			if err != nil {
				errc <- err
				return
			}
			for _, b := range Batch(frames, 4) {
				blk, err := c.CompressBatch(b)
				if err != nil {
					errc <- err
					return
				}
				d := dpool.Get().(*Decompressor)
				out, err := d.DecompressBatch(blk)
				dpool.Put(d)
				if err != nil {
					errc <- err
					return
				}
				for ti := range b {
					for i := range b[ti].X {
						if math.Abs(b[ti].X[i]-out[ti].X[i]) > 1e-3 {
							errc <- fmt.Errorf("goroutine %d: bound violated", g)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// waitNoExtraGoroutines polls until the goroutine count returns to the
// recorded baseline, failing if pipeline goroutines outlive their run. A
// hand-rolled goleak: the pool guarantees started tasks are awaited, so any
// excess past the baseline is a leak.
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestCompressContextDeadline cancels an 8-shard x 8-worker compression by
// deadline and checks the whole containment contract: the typed error, the
// response latency, no leaked goroutines, and a byte-identical retry on the
// same Compressor afterwards.
func TestCompressContextDeadline(t *testing.T) {
	frames := makeFrames(16, 4096, 60)
	cfg := Config{ErrorBound: 1e-3, Workers: 8, Shards: 8, Telemetry: true}
	ref, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	c, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Slow every shard entry down so the batch cannot finish inside the
	// deadline regardless of machine speed; rows keep polling in between.
	c.setFaultHook(func(op string, shard int) { time.Sleep(10 * time.Millisecond) })
	const timeout = 25 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	_, err = c.CompressBatchContext(ctx, frames)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if late := elapsed - timeout; late > 100*time.Millisecond {
		t.Fatalf("returned %v past the deadline, want within 100ms", late)
	}
	waitNoExtraGoroutines(t, base)
	if got := c.Telemetry().Counters["pipeline.cancelled_runs"]; got == 0 {
		t.Error("pipeline.cancelled_runs not counted")
	}

	// State must not have advanced: the retried batch is byte-identical to
	// an uncancelled first batch.
	c.setFaultHook(nil)
	got, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("retry after cancellation differs from an uncancelled run")
	}
}

// TestCompressCancelMidADPTrial cancels from inside a shard encode of the
// ADP evaluation round — the deepest point of the trial fan-out — and
// checks clean unwinding plus an identical retry.
func TestCompressCancelMidADPTrial(t *testing.T) {
	frames := makeFrames(10, 2048, 64)
	cfg := Config{ErrorBound: 1e-3, Method: ADP, Workers: 8, Shards: 8}
	ref, _ := NewCompressor(cfg)
	want, err := ref.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	c, _ := NewCompressor(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	c.setFaultHook(func(op string, shard int) {
		if op == "encode_shard" {
			once.Do(cancel)
		}
	})
	if _, err := c.CompressBatchContext(ctx, frames); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitNoExtraGoroutines(t, base)

	c.setFaultHook(nil)
	got, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("retry after mid-trial cancellation differs from an uncancelled run")
	}
}

// TestShardPanicSurfacesAsPanicError injects a panic into one shard of the
// encode and decode fan-outs: the pool must contain it, surface it as a
// typed *pool.PanicError with the stack attached, count it in telemetry,
// and leave the pipeline reusable.
func TestShardPanicSurfacesAsPanicError(t *testing.T) {
	frames := makeFrames(8, 2048, 65)
	cfg := Config{ErrorBound: 1e-3, Workers: 4, Shards: 4, Telemetry: true}

	c, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.setFaultHook(func(op string, shard int) {
		if op == "encode_shard" && shard == 1 {
			panic("injected encode fault")
		}
	})
	_, err = c.CompressBatch(frames)
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("encode err = %v, want *pool.PanicError", err)
	}
	if pe.Value != "injected encode fault" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Value: %v, stack %d bytes}", pe.Value, len(pe.Stack))
	}
	if got := c.Telemetry().Counters["pool.panics_recovered"]; got == 0 {
		t.Error("pool.panics_recovered not counted on encode")
	}
	c.setFaultHook(nil)
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatalf("compressor unusable after contained panic: %v", err)
	}

	d := NewDecompressorWith(DecompressorOptions{Workers: 4, Telemetry: true})
	d.setFaultHook(func(op string, shard int) {
		if op == "decode_shard" && shard == 0 {
			panic("injected decode fault")
		}
	})
	_, err = d.DecompressBatch(blk)
	if !errors.As(err, &pe) {
		t.Fatalf("decode err = %v, want *pool.PanicError", err)
	}
	if got := d.Telemetry().Counters["pool.panics_recovered"]; got == 0 {
		t.Error("pool.panics_recovered not counted on decode")
	}
	d.setFaultHook(nil)
	if _, err := d.DecompressBatch(blk); err != nil {
		t.Fatalf("decompressor unusable after contained panic: %v", err)
	}
}
