package mdz

import (
	"strings"
	"testing"
)

func TestBlockChecksumDetectsCorruption(t *testing.T) {
	frames := makeFrames(10, 100, 31)
	c, _ := NewCompressor(Config{ErrorBound: 1e-3})
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit: the CRC must catch it even if the underlying
	// codec would happily mis-decode.
	for _, pos := range []int{8, len(blk) / 2, len(blk) - 6} {
		bad := append([]byte(nil), blk...)
		bad[pos] ^= 0x40
		d := NewDecompressor()
		if _, err := d.DecompressBatch(bad); err == nil {
			t.Errorf("bit flip at %d went undetected", pos)
		} else if !strings.Contains(err.Error(), "checksum") &&
			!strings.Contains(err.Error(), "corrupt") &&
			!strings.Contains(err.Error(), "not an MDZ") {
			t.Logf("flip at %d detected via: %v", pos, err)
		}
	}
	// Untouched block still decodes.
	d := NewDecompressor()
	if _, err := d.DecompressBatch(blk); err != nil {
		t.Fatalf("pristine block rejected: %v", err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	frames := makeFrames(20, 200, 32)
	seq, _ := NewCompressor(Config{ErrorBound: 1e-3, Workers: 1})
	par, _ := NewCompressor(Config{ErrorBound: 1e-3, Workers: 4})
	for _, batch := range Batch(frames, 10) {
		a, err := seq.CompressBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.CompressBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("parallel output differs from sequential")
		}
	}
}
