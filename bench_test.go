// Top-level benchmarks: one testing.B entry per table and figure of the
// paper's evaluation, running the corresponding experiment at reduced
// scale. Use cmd/mdzbench for full-scale runs with printed tables.
package mdz_test

import (
	"testing"

	"github.com/mdz/mdz/internal/bench"
)

// benchConfig keeps per-iteration work bounded; dataset generation is
// cached across iterations inside the harness.
var benchConfig = bench.Config{Scale: 0.25, Seed: 7}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(id, benchConfig)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

func BenchmarkFig3Characterization(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4Distributions(b *testing.B)     { runExperiment(b, "fig4") }
func BenchmarkFig5Temporal(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig8Similarity(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkTab2PredictionError(b *testing.B)   { runExperiment(b, "tab2") }
func BenchmarkFig9QuantScale(b *testing.B)        { runExperiment(b, "fig9") }
func BenchmarkTab3Sequence(b *testing.B)          { runExperiment(b, "tab3") }
func BenchmarkFig10AdaptiveTracking(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11ADP(b *testing.B)              { runExperiment(b, "fig11") }
func BenchmarkTab4SZModes(b *testing.B)           { runExperiment(b, "tab4") }
func BenchmarkTab5Lossless(b *testing.B)          { runExperiment(b, "tab5") }
func BenchmarkFig12Ratio(b *testing.B)            { runExperiment(b, "fig12") }
func BenchmarkFig13RateDistortion(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkTab6ErrorAtCR10(b *testing.B)       { runExperiment(b, "tab6") }
func BenchmarkFig14RDF(b *testing.B)              { runExperiment(b, "fig14") }
func BenchmarkFig15Throughput(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16HACC(b *testing.B)             { runExperiment(b, "fig16") }
func BenchmarkTab7LAMMPS(b *testing.B)            { runExperiment(b, "tab7") }
