module github.com/mdz/mdz

go 1.22
