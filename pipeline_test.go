package mdz

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestPipelineByteIdentity: every pipeline depth produces the same container
// bytes as the synchronous writer, across formats and with checkpoints in
// the stream — the depth is an execution knob, never a format knob.
func TestPipelineByteIdentity(t *testing.T) {
	frames := makeFrames(21, 120, 3)
	for _, format := range []int{2, 3} {
		cfg := Config{
			ErrorBound: 1e-3, Method: ADP, BufferSize: 4,
			CheckpointInterval: 2, FormatVersion: format,
		}
		var want bytes.Buffer
		w, err := NewWriter(&want, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if err := w.WriteFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int{1, 4, MaxPipelineDepth} {
			t.Run(fmt.Sprintf("v%d_depth%d", format, depth), func(t *testing.T) {
				pcfg := cfg
				pcfg.PipelineDepth = depth
				var got bytes.Buffer
				pw, err := NewWriter(&got, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range frames {
					if err := pw.WriteFrame(f); err != nil {
						t.Fatal(err)
					}
				}
				if err := pw.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Fatalf("depth %d container differs from synchronous: %d vs %d bytes",
						depth, got.Len(), want.Len())
				}
				wr, wc := w.Stats()
				gr, gc := pw.Stats()
				if wr != gr || wc != gc {
					t.Errorf("pipelined Stats = (%d, %d), want (%d, %d)", gr, gc, wr, wc)
				}
			})
		}
	}
}

// errSink fails every Write with a fixed error.
type errSink struct{ err error }

func (s errSink) Write([]byte) (int, error) { return 0, s.err }

// TestPipelineErrorPropagation: a sink failure inside the pipelined io path
// must surface to the caller — at the latest on Close — and never hang the
// compress stage or get replaced by a later error.
func TestPipelineErrorPropagation(t *testing.T) {
	sinkErr := errors.New("disk gone")
	frames := makeFrames(12, 100, 5)
	for _, depth := range []int{0, 2} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			w, err := NewWriter(errSink{sinkErr}, Config{
				ErrorBound: 1e-3, BufferSize: 4,
				CheckpointInterval: 2, PipelineDepth: depth,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Small frames live in the 1 MiB buffer until a flush, so the
			// sink failure may only materialize at Flush/Close — the
			// pipelined writer must still deliver it, not swallow it.
			for _, f := range frames {
				if err := w.WriteFrame(f); err != nil {
					if !errors.Is(err, sinkErr) {
						t.Fatalf("WriteFrame error = %v, want %v", err, sinkErr)
					}
					break
				}
			}
			if err := w.Close(); !errors.Is(err, sinkErr) {
				t.Fatalf("Close error = %v, want %v", err, sinkErr)
			}
			if err := w.WriteFrame(frames[0]); err == nil {
				t.Fatal("WriteFrame after failed Close succeeded")
			}
		})
	}
}

// TestPipelineFlushSurfacesSinkError: Flush drains the pipeline and reports
// the sink failure instead of claiming delivery.
func TestPipelineFlushSurfacesSinkError(t *testing.T) {
	sinkErr := errors.New("net down")
	w, err := NewWriter(errSink{sinkErr}, Config{
		ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 2, PipelineDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range makeFrames(8, 100, 6) {
		if err := w.WriteFrame(f); err != nil {
			if !errors.Is(err, sinkErr) {
				t.Fatalf("WriteFrame error = %v, want %v", err, sinkErr)
			}
			break
		}
	}
	if err := w.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush error = %v, want %v", err, sinkErr)
	}
}

// TestPipelineConfigValidation: the new knobs are range-checked up front.
func TestPipelineConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{ErrorBound: 1e-3, PipelineDepth: -1},
		{ErrorBound: 1e-3, PipelineDepth: MaxPipelineDepth + 1},
		{ErrorBound: 1e-3, ADPSampleShards: -1},
		{ErrorBound: 1e-3, ADPSampleShards: 1 << 20},
	} {
		if _, err := NewCompressor(cfg); err == nil {
			t.Errorf("NewCompressor accepted %+v", cfg)
		}
		if _, err := NewWriter(&bytes.Buffer{}, cfg); err == nil {
			t.Errorf("NewWriter accepted %+v", cfg)
		}
	}
	if _, err := NewWriter(&bytes.Buffer{}, Config{
		ErrorBound: 1e-3, PipelineDepth: MaxPipelineDepth, ADPSampleShards: 2,
	}); err != nil {
		t.Errorf("valid knobs rejected: %v", err)
	}
}
