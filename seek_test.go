package mdz

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/mdz/mdz/internal/faultio"
)

// writeSeekStream compresses frames into a framed stream with the given
// config, failing the test on any error.
func writeSeekStream(t *testing.T, frames []Frame, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAllSerial decodes a whole stream with a plain serial Reader.
func readAllSerial(t *testing.T, data []byte) []Frame {
	t.Helper()
	got, err := NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// frameSlicesEqual compares decoded frame slices for bit-exact equality
// (decode is deterministic, so any byte-level divergence shows up here).
func frameSlicesEqual(a, b []Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !framesExactEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// scanEntries runs the header-only scanner over a stream, returning its
// entries and trailer.
func scanEntries(t *testing.T, data []byte) ([]SeekEntry, *scannedTrailer) {
	t.Helper()
	sc := newStreamScanner(bytes.NewReader(data))
	if err := sc.open(); err != nil {
		t.Fatal(err)
	}
	entries, trailer, err := sc.scan(true)
	if err != nil {
		t.Fatal(err)
	}
	return entries, trailer
}

func TestSeekIndexedStream(t *testing.T) {
	frames := makeFrames(57, 200, 91)
	cfg := Config{ErrorBound: 1e-3, BufferSize: 5, CheckpointInterval: 2, SeekIndex: true}
	data := writeSeekStream(t, frames, cfg)
	want := readAllSerial(t, data)
	if len(want) != len(frames) {
		t.Fatalf("serial decode: %d frames, want %d", len(want), len(frames))
	}

	// The index frame must be loadable from the tail without a scan.
	r := NewReader(bytes.NewReader(data))
	if idx, ok := r.loadIndexTail(); !ok {
		t.Fatal("loadIndexTail failed on an indexed stream")
	} else if got := seekIndexSnapshots(idx); got != int64(len(frames)) {
		t.Fatalf("index covers %d snapshots, want %d", got, len(frames))
	}

	// Seek to every snapshot and check the next frame matches the serial
	// decode bit-exactly (including mid-block targets).
	for _, target := range []int{0, 1, 4, 5, 7, 23, 29, 30, 49, 56} {
		r := NewReader(bytes.NewReader(data))
		if err := r.Seek(target); err != nil {
			t.Fatalf("Seek(%d): %v", target, err)
		}
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame after Seek(%d): %v", target, err)
		}
		if !reflect.DeepEqual(f, want[target]) {
			t.Fatalf("Seek(%d): frame differs from serial decode", target)
		}
	}

	// Seeking past the end reports io.EOF; negative targets are rejected.
	r = NewReader(bytes.NewReader(data))
	if err := r.Seek(len(frames)); !errors.Is(err, io.EOF) {
		t.Fatalf("Seek past end: %v, want io.EOF", err)
	}
	if err := r.Seek(-1); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("Seek(-1): %v, want a validation error", err)
	}
	// A Reader that hit io.EOF can still Seek back.
	if err := r.Seek(3); err != nil {
		t.Fatalf("Seek after EOF: %v", err)
	}
	if f, err := r.ReadFrame(); err != nil || !reflect.DeepEqual(f, want[3]) {
		t.Fatalf("re-Seek read: %v", err)
	}
}

func TestReadRangeWindows(t *testing.T) {
	frames := makeFrames(64, 150, 17)
	for _, cfg := range []Config{
		{ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 3, SeekIndex: true},
		{ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 3}, // scan fallback
		{ErrorBound: 1e-3, BufferSize: 4, SeekIndex: true},       // no checkpoints
		{ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 3, SeekIndex: true, FormatVersion: 3},
	} {
		data := writeSeekStream(t, frames, cfg)
		want := readAllSerial(t, data)
		for _, rng := range [][2]int{{0, 64}, {10, 20}, {13, 14}, {62, 64}, {30, 100}, {5, 5}} {
			r := NewReader(bytes.NewReader(data))
			got, err := r.ReadRange(rng[0], rng[1])
			if err != nil {
				t.Fatalf("cfg %+v ReadRange(%d,%d): %v", cfg, rng[0], rng[1], err)
			}
			lo, hi := rng[0], rng[1]
			if hi > len(want) {
				hi = len(want)
			}
			if !frameSlicesEqual(got, want[lo:hi]) {
				t.Fatalf("cfg %+v ReadRange(%d,%d): frames differ from serial slice", cfg, rng[0], rng[1])
			}
		}
		// Whole-stream reads through a seeking reader still validate the
		// trailer bounds.
		r := NewReader(bytes.NewReader(data))
		if _, err := r.ReadRange(0, len(frames)); err != nil {
			t.Fatalf("full-range read: %v", err)
		}
		if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
			t.Fatalf("post-range read: %v", err)
		}
	}
}

func TestReadRangeValidation(t *testing.T) {
	data := writeSeekStream(t, makeFrames(8, 50, 3), Config{ErrorBound: 1e-3, BufferSize: 4, SeekIndex: true})
	r := NewReader(bytes.NewReader(data))
	if _, err := r.ReadRange(-1, 2); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := r.ReadRange(3, 2); err == nil {
		t.Error("hi < lo accepted")
	}
	if got, err := r.ReadRange(100, 200); !errors.Is(err, io.EOF) || len(got) != 0 {
		t.Errorf("past-end range: %d frames, err %v", len(got), err)
	}

	// Non-seekable sources cannot Seek.
	nr := NewReader(io.MultiReader(bytes.NewReader(data)))
	if err := nr.Seek(0); !errors.Is(err, ErrNotSeekable) {
		t.Errorf("Seek on non-seeker: %v", err)
	}

	// v1 streams carry no frame index.
	blk, err := Compress(makeFrames(4, 40, 9), Config{ErrorBound: 1e-3})
	_ = blk
	if err != nil {
		t.Fatal(err)
	}
	v1 := buildV1Stream(mustBlock(t, makeFrames(4, 40, 9)))
	vr := NewReader(bytes.NewReader(v1))
	if err := vr.Seek(0); !errors.Is(err, ErrNotSeekable) {
		t.Errorf("Seek on v1 stream: %v", err)
	}
}

// mustBlock compresses one batch into a raw block for v1 container tests.
func mustBlock(t *testing.T, frames []Frame) []byte {
	t.Helper()
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

// TestSeekIndexWireEquivalence pins the two invariants of the index frame:
// an indexed stream's data/checkpoint prefix is byte-identical to the
// unindexed stream's, and RetrofitSeekIndex over the unindexed stream
// reproduces the Writer's indexed bytes exactly.
func TestSeekIndexWireEquivalence(t *testing.T) {
	frames := makeFrames(31, 120, 55)
	base := Config{ErrorBound: 1e-3, BufferSize: 5, CheckpointInterval: 2}
	plain := writeSeekStream(t, frames, base)
	indexed := base
	indexed.SeekIndex = true
	withIdx := writeSeekStream(t, frames, indexed)

	_, trailer := scanEntries(t, plain)
	if trailer == nil {
		t.Fatal("no trailer in plain stream")
	}
	if !bytes.Equal(plain[:trailer.off], withIdx[:trailer.off]) {
		t.Fatal("indexed stream's frame prefix differs from the unindexed stream")
	}

	var retro bytes.Buffer
	n, err := RetrofitSeekIndex(bytes.NewReader(plain), &retro)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("retrofit indexed no frames")
	}
	if !bytes.Equal(retro.Bytes(), withIdx) {
		t.Fatal("RetrofitSeekIndex output differs from a natively indexed stream")
	}

	// Retrofitting an already-indexed stream is rejected.
	if _, err := RetrofitSeekIndex(bytes.NewReader(withIdx), io.Discard); err == nil ||
		!strings.Contains(err.Error(), "already carries") {
		t.Fatalf("double retrofit: %v", err)
	}
	// Truncated streams are rejected (salvage first, then index).
	if _, err := RetrofitSeekIndex(bytes.NewReader(plain[:len(plain)-30]), io.Discard); err == nil {
		t.Fatal("retrofit accepted a truncated stream")
	}

	// The retrofit stream reads back identically, strictly.
	if !frameSlicesEqual(readAllSerial(t, retro.Bytes()), readAllSerial(t, plain)) {
		t.Fatal("retrofit stream decodes differently")
	}
}

// TestSeekIndexSalvageCompat: an indexed stream passes through the salvage
// reader untouched — the extra frame costs nothing and corrupting it does
// not cost any data frames.
func TestSeekIndexSalvageCompat(t *testing.T) {
	frames := makeFrames(24, 100, 77)
	data := writeSeekStream(t, frames, Config{ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 2, SeekIndex: true})

	r := NewReaderWith(bytes.NewReader(data), ReaderOptions{Resync: true})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("salvage read of clean indexed stream: %d frames, want %d", len(got), len(frames))
	}
	if st := r.SalvageStats(); st.CorruptFrames != 0 || st.DroppedFrames != 0 {
		t.Fatalf("clean indexed stream reported damage: %+v", st)
	}

	// Corrupt the seek-table payload: strict readers fail, salvage readers
	// lose zero data frames, and Seek falls back to the scan rebuild.
	entries, trailer := scanEntries(t, data)
	_ = entries
	if trailer == nil {
		t.Fatal("no trailer")
	}
	// The seek frame sits directly before the trailer; find it backwards.
	idxOff := int64(bytes.LastIndex(data[:trailer.off], frameSync[:]))
	if idxOff < 0 || data[idxOff+4] != frameSeekIndex {
		t.Fatalf("seek frame not found before trailer (off %d type %d)", idxOff, data[idxOff+4])
	}
	bad := faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: idxOff + frameHeaderSize + 3, Bit: 4})

	if _, err := NewReader(bytes.NewReader(bad)).ReadAll(); err == nil {
		t.Fatal("strict reader accepted a corrupt seek frame")
	}
	sr := NewReaderWith(bytes.NewReader(bad), ReaderOptions{Resync: true})
	got, err = sr.ReadAll()
	if err != nil || len(got) != len(frames) {
		t.Fatalf("salvage read with corrupt seek frame: %d frames, err %v", len(got), err)
	}
	if st := sr.SalvageStats(); st.DroppedFrames != 0 {
		t.Fatalf("corrupt seek frame cost data frames: %+v", st)
	}

	want := readAllSerial(t, data)
	rr := NewReaderWith(bytes.NewReader(bad), ReaderOptions{Resync: true})
	ranged, err := rr.ReadRange(10, 14)
	if err != nil || !frameSlicesEqual(ranged, want[10:14]) {
		t.Fatalf("ReadRange over corrupt-index stream: err %v", err)
	}
}

// TestSeekUnderCorruptCheckpoint is the satellite-4 gate: when the nearest
// checkpoint before the target is corrupt, a strict Seek surfaces the
// corruption while a Resync Seek falls back to the previous checkpoint (or
// the stream head) with the damage accounted in SalvageStats — and still
// delivers bit-exact frames.
func TestSeekUnderCorruptCheckpoint(t *testing.T) {
	frames := makeFrames(60, 150, 23)
	data := writeSeekStream(t, frames, Config{ErrorBound: 1e-3, BufferSize: 5, CheckpointInterval: 2, SeekIndex: true})
	want := readAllSerial(t, data)
	entries, _ := scanEntries(t, data)

	// Locate the last checkpoint entry before the target snapshot.
	const target = 54
	var cps []SeekEntry
	for _, e := range entries {
		if e.Type == frameCheckpoint && e.SnapFrom <= target {
			cps = append(cps, e)
		}
	}
	if len(cps) < 2 {
		t.Fatalf("test needs >= 2 checkpoints before the target, have %d", len(cps))
	}
	last := cps[len(cps)-1]
	bad := faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: last.Offset + frameHeaderSize + 5, Bit: 2})

	// Strict: the corruption surfaces as an error.
	r := NewReader(bytes.NewReader(bad))
	if err := r.Seek(target); err == nil || !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("strict Seek over corrupt checkpoint: %v, want ErrCorruptBlock", err)
	}

	// Resync: fall back to the previous checkpoint, account the damage,
	// deliver exact frames.
	sr := NewReaderWith(bytes.NewReader(bad), ReaderOptions{Resync: true})
	if err := sr.Seek(target); err != nil {
		t.Fatalf("resync Seek over corrupt checkpoint: %v", err)
	}
	st := sr.SalvageStats()
	if st.CorruptFrames == 0 {
		t.Fatalf("fallback did not account the corrupt checkpoint: %+v", st)
	}
	if st.FirstError == nil || st.FirstError.Offset != last.Offset {
		t.Fatalf("FirstError does not point at the corrupt checkpoint: %+v", st.FirstError)
	}
	f, err := sr.ReadFrame()
	if err != nil || !reflect.DeepEqual(f, want[target]) {
		t.Fatalf("post-fallback frame: err %v", err)
	}

	// Corrupt every checkpoint: the final fallback decodes block 0.
	allBad := data
	for _, e := range cps {
		allBad = faultio.Corrupt(allBad, faultio.Fault{Kind: faultio.FlipBit, Offset: e.Offset + frameHeaderSize + 5, Bit: 2})
	}
	ar := NewReaderWith(bytes.NewReader(allBad), ReaderOptions{Resync: true})
	if err := ar.Seek(target); err != nil {
		t.Fatalf("resync Seek with all checkpoints corrupt: %v", err)
	}
	if st := ar.SalvageStats(); st.CorruptFrames != len(cps) {
		t.Fatalf("accounted %d corrupt frames, want %d", st.CorruptFrames, len(cps))
	}
	f, err = ar.ReadFrame()
	if err != nil || !reflect.DeepEqual(f, want[target]) {
		t.Fatalf("block-0 fallback frame: err %v", err)
	}
}

// TestPipelinedReaderDifferential: for every pipeline depth × worker count,
// the pipelined Reader delivers frames bit-identical to the serial Reader —
// on full reads, ranged reads and after Seek.
func TestPipelinedReaderDifferential(t *testing.T) {
	frames := makeFrames(48, 180, 67)
	for _, cfg := range []Config{
		{ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 3, SeekIndex: true},
		{ErrorBound: 1e-3, BufferSize: 4, FormatVersion: 3},
	} {
		data := writeSeekStream(t, frames, cfg)
		want := readAllSerial(t, data)
		for _, depth := range []int{1, 2, 8} {
			for _, workers := range []int{1, 2, 4} {
				opts := ReaderOptions{Pipeline: depth, Workers: workers}
				r := NewReaderWith(bytes.NewReader(data), opts)
				got, err := r.ReadAll()
				if err != nil {
					t.Fatalf("depth %d workers %d: %v", depth, workers, err)
				}
				if !frameSlicesEqual(got, want) {
					t.Fatalf("depth %d workers %d: frames differ from serial decode", depth, workers)
				}
				if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
					t.Fatalf("depth %d workers %d post-drain: %v", depth, workers, err)
				}

				rr := NewReaderWith(bytes.NewReader(data), opts)
				ranged, err := rr.ReadRange(9, 31)
				if err != nil || !frameSlicesEqual(ranged, want[9:31]) {
					t.Fatalf("depth %d workers %d ranged: err %v", depth, workers, err)
				}
				rr.Close()
			}
		}
	}
}

// TestPipelinedReaderErrorParity: a pipelined strict reader surfaces
// corruption after exactly the frames a serial strict reader would deliver.
func TestPipelinedReaderErrorParity(t *testing.T) {
	frames := makeFrames(40, 120, 31)
	data := writeSeekStream(t, frames, Config{ErrorBound: 1e-3, BufferSize: 4})
	entries, _ := scanEntries(t, data)
	var datas []SeekEntry
	for _, e := range entries {
		if e.Type == frameData {
			datas = append(datas, e)
		}
	}
	victim := datas[len(datas)/2]
	bad := faultio.Corrupt(data, faultio.Fault{Kind: faultio.FlipBit, Offset: victim.Offset + frameHeaderSize + 9, Bit: 3})

	serial := NewReader(bytes.NewReader(bad))
	var serialFrames []Frame
	var serialErr error
	for {
		f, err := serial.ReadFrame()
		if err != nil {
			serialErr = err
			break
		}
		serialFrames = append(serialFrames, f)
	}
	if serialErr == nil || errors.Is(serialErr, io.EOF) {
		t.Fatalf("serial reader did not fail: %v", serialErr)
	}

	for _, workers := range []int{1, 4} {
		piped := NewReaderWith(bytes.NewReader(bad), ReaderOptions{Pipeline: 4, Workers: workers})
		var pipedFrames []Frame
		var pipedErr error
		for {
			f, err := piped.ReadFrame()
			if err != nil {
				pipedErr = err
				break
			}
			pipedFrames = append(pipedFrames, f)
		}
		piped.Close()
		if !frameSlicesEqual(pipedFrames, serialFrames) {
			t.Fatalf("workers %d: pipelined reader delivered %d frames before failing, serial %d",
				workers, len(pipedFrames), len(serialFrames))
		}
		var want, got *CorruptBlockError
		if !errors.As(serialErr, &want) || !errors.As(pipedErr, &got) {
			t.Fatalf("workers %d: error types diverge: serial %v, piped %v", workers, serialErr, pipedErr)
		}
		if got.Block != want.Block || got.Offset != want.Offset {
			t.Fatalf("workers %d: error location diverges: serial %v, piped %v", workers, want, got)
		}
	}
}

// TestPipelinedReaderTruncation: truncation surfaces in pipelined mode too.
func TestPipelinedReaderTruncation(t *testing.T) {
	frames := makeFrames(20, 100, 13)
	data := writeSeekStream(t, frames, Config{ErrorBound: 1e-3, BufferSize: 4})
	r := NewReaderWith(bytes.NewReader(data[:len(data)-20]), ReaderOptions{Pipeline: 4})
	defer r.Close()
	_, err := r.ReadAll()
	if err == nil || !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated pipelined read: %v, want ErrTruncated", err)
	}
}

// TestSeekAvoidsPrefixDecode proves the point of the feature: seeking into
// the tail of a long stream decodes only the covered frames, not the
// prefix. Decode work is measured by the decompress.axis_batches counter
// (three per data block); the seek path must decode at least an order of
// magnitude fewer blocks than the serial prefix decode would.
func TestSeekAvoidsPrefixDecode(t *testing.T) {
	frames := makeFrames(400, 60, 7)
	data := writeSeekStream(t, frames, Config{ErrorBound: 1e-3, BufferSize: 2, CheckpointInterval: 50, SeekIndex: true})

	sr := NewReaderWith(bytes.NewReader(data), ReaderOptions{Telemetry: true})
	want, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	serialBatches := sr.Telemetry().Counters["decompress.axis_batches"]
	if serialBatches == 0 {
		t.Fatal("serial decode recorded no axis batches")
	}

	r := NewReaderWith(bytes.NewReader(data), ReaderOptions{Telemetry: true})
	got, err := r.ReadRange(390, 394)
	if err != nil || !frameSlicesEqual(got, want[390:394]) {
		t.Fatalf("tail range: err %v", err)
	}
	seekBatches := r.Telemetry().Counters["decompress.axis_batches"]
	// The window covers 3 two-snapshot blocks plus at most a checkpoint
	// reseed; the serial prefix is 200 blocks. Require the 10x headroom the
	// feature promises.
	if seekBatches == 0 || seekBatches > serialBatches/10 {
		t.Fatalf("tail seek decoded %d axis batches vs %d serial: prefix was not skipped", seekBatches, serialBatches)
	}
}

// TestResumeWriterSeekIndex: resuming an indexing Writer carries the table;
// resuming with SeekIndex on from a non-indexing export is rejected.
func TestResumeWriterSeekIndex(t *testing.T) {
	frames := makeFrames(30, 80, 41)
	cfg := Config{ErrorBound: 1e-3, BufferSize: 5, CheckpointInterval: 2, SeekIndex: true}

	var whole bytes.Buffer
	w, err := NewWriter(&whole, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[:17] {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the state through its wire format to cover the index flag.
	wire, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	st2 := &WriterState{}
	if err := st2.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if !st2.SeekIndex || len(st2.Index) != len(st.Index) {
		t.Fatalf("index lost in state round-trip: on=%v entries=%d", st2.SeekIndex, len(st2.Index))
	}

	w2, err := ResumeWriter(&whole, cfg, st2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[17:] {
		if err := w2.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// The resumed stream's index must cover the whole stream.
	want := writeSeekStream(t, frames, cfg)
	if !bytes.Equal(whole.Bytes(), want) {
		t.Fatal("resumed indexed stream differs from a single-writer stream")
	}

	// Enabling SeekIndex on resume from a non-indexing export is rejected.
	plainCfg := cfg
	plainCfg.SeekIndex = false
	var pb bytes.Buffer
	pw, err := NewWriter(&pb, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[:6] {
		if err := pw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	pst, err := pw.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeWriter(&pb, cfg, pst); !errors.Is(err, ErrStateDesync) {
		t.Fatalf("resume with late SeekIndex: %v, want ErrStateDesync", err)
	}
}

// TestSeekErrorBound: frames delivered through Seek honor the error bound
// against the original input (not just bit-parity with serial decode).
func TestSeekErrorBound(t *testing.T) {
	frames := makeFrames(30, 90, 3)
	data := writeSeekStream(t, frames, Config{ErrorBound: 1e-2, Mode: Absolute, BufferSize: 5, CheckpointInterval: 2, SeekIndex: true})
	r := NewReader(bytes.NewReader(data))
	got, err := r.ReadRange(12, 18)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got {
		orig := frames[12+i]
		for j := range f.X {
			if d := math.Abs(f.X[j] - orig.X[j]); d > 1e-2 {
				t.Fatalf("frame %d particle %d: error %v exceeds bound", 12+i, j, d)
			}
		}
	}
}

// TestSeekIndexParseHardening: hostile seek-table payloads are rejected
// rather than trusted.
func TestSeekIndexParseHardening(t *testing.T) {
	good := appendSeekIndex(nil, []SeekEntry{
		{Offset: 4, Seq: 0, Type: frameData, SnapFrom: 0, SnapCount: 5},
		{Offset: 900, Seq: 1, Type: frameCheckpoint, SnapFrom: 5},
		{Offset: 1400, Seq: 2, Type: frameData, SnapFrom: 5, SnapCount: 5},
	})
	if entries, err := parseSeekIndex(good); err != nil || len(entries) != 3 {
		t.Fatalf("good table rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad version":    {9, 1},
		"huge count":     append([]byte{seekIndexVersion}, 0xFF, 0xFF, 0xFF, 0x7F),
		"trailing bytes": append(append([]byte{}, good...), 0),
		"trailer type":   appendSeekIndex(nil, []SeekEntry{{Offset: 4, Type: frameTrailer, SnapCount: 1}}),
		"zero-snap data": appendSeekIndex(nil, []SeekEntry{{Offset: 4, Type: frameData, SnapCount: 0}}),
		"cp with snaps":  appendSeekIndex(nil, []SeekEntry{{Offset: 4, Type: frameCheckpoint, SnapCount: 2}}),
		"non-monotonic": appendSeekIndex(nil, []SeekEntry{
			{Offset: 4, Seq: 0, Type: frameData, SnapCount: 1},
			{Offset: 4, Seq: 1, Type: frameData, SnapCount: 1},
		}),
	}
	for name, payload := range cases {
		if _, err := parseSeekIndex(payload); err == nil {
			t.Errorf("%s: hostile seek table accepted", name)
		}
	}
	if got := fmt.Sprint(seekIndexSnapshots(nil)); got != "0" {
		t.Errorf("empty index snapshots = %s", got)
	}
}
