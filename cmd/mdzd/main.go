// Command mdzd is the MDZ compression daemon: stateful streaming
// compression sessions over HTTP.
//
// A client opens a session with a compression configuration, streams
// snapshot frames in (raw little-endian records), and reads back either
// the finished .mdz container or decoded frame ranges. Many tenants share
// one process under global and per-session memory budgets; idle sessions
// are evicted; SIGTERM drains every live session to -state so the next
// process resumes them without losing an accepted frame.
//
//	mdzd -addr :8642 -admin-addr 127.0.0.1:8643 -state /var/lib/mdzd/state
//
// Quickstart against a running daemon:
//
//	curl -s localhost:8642/v1/sessions -d '{"error_bound":1e-3}'
//	curl -s localhost:8642/v1/sessions/s00000001/frames --data-binary @frames.bin
//	curl -s localhost:8642/v1/sessions/s00000001/close -X POST
//	curl -s localhost:8642/v1/sessions/s00000001/stream -o traj.mdz
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mdz/mdz/internal/daemon"
	"github.com/mdz/mdz/internal/obshttp"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8642", "service listen address")
		adminAddr = flag.String("admin-addr", "", "admin listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
		statePath = flag.String("state", "", "drain-state file: written on shutdown, restored (and consumed) on startup")

		maxSessions = flag.Int("max-sessions", 1024, "maximum concurrently live sessions")
		idleTimeout = flag.Duration("idle-timeout", 15*time.Minute, "evict sessions idle longer than this (0 = never)")
		queueDepth  = flag.Int("queue", 4, "per-session ingest queue depth, in batches")
		memGlobal   = flag.Int64("mem-global", 0, "global memory budget in bytes for queued frames and retained containers (0 = unlimited)")
		memSession  = flag.Int64("mem-session", 0, "per-session memory cap in bytes (0 = unlimited)")
		maxDecode   = flag.Int64("max-decode", 0, "decode-side allocation budget per operation in bytes (0 = unlimited)")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before draining sessions")
	)
	flag.Parse()
	if err := run(*addr, *adminAddr, daemon.Options{
		MaxSessions:    *maxSessions,
		IdleTimeout:    *idleTimeout,
		QueueDepth:     *queueDepth,
		MemGlobal:      *memGlobal,
		MemPerSession:  *memSession,
		MaxDecodeBytes: *maxDecode,
		StatePath:      *statePath,
		Logf:           logf,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "mdzd:", err)
		os.Exit(1)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mdzd: "+format+"\n", args...)
}

func run(addr, adminAddr string, opts daemon.Options, drainTimeout time.Duration) error {
	srv, err := daemon.New(opts)
	if err != nil {
		return err
	}

	api, err := obshttp.Serve(addr, srv.Handler(), logf)
	if err != nil {
		return err
	}
	logf("serving on http://%s", api.Addr())

	var admin *obshttp.Server
	if adminAddr != "" {
		admin, err = obshttp.Serve(adminAddr, obshttp.Mux(srv.Registry()), logf)
		if err != nil {
			return err
		}
		logf("admin on http://%s/metrics", admin.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	logf("received %v, draining", got)

	// Stop accepting connections, let in-flight requests finish, then
	// drain sessions to disk and exit.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := api.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		logf("service shutdown: %v", err)
	}
	if err := srv.Drain(); err != nil {
		return err
	}
	srv.Close()
	if admin != nil {
		actx, acancel := context.WithTimeout(context.Background(), time.Second)
		defer acancel()
		if err := admin.Shutdown(actx); err != nil {
			logf("admin shutdown: %v", err)
		}
	}
	logf("bye")
	return nil
}
