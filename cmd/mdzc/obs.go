package main

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/obshttp"
	"github.com/mdz/mdz/internal/telemetry"
)

// obs wires the optional observability surfaces around one mdzc command:
// a metrics/expvar/pprof HTTP listener while the command runs, CPU/heap
// profiles, and a machine-readable stats report written afterwards. The
// zero value (no flags set) is fully inert.
type obs struct {
	metricsAddr string
	cpuprofile  string
	memprofile  string
	statsJSON   string

	reg     *mdz.TelemetryRegistry
	srv     *obshttp.Server
	cpuFile *os.File
	report  statsReport
}

// statsReport is the -stats-json document. Derived convenience fields
// (stage totals, ADP winners, scope rate) are extracted from the raw
// telemetry snapshot included alongside them.
type statsReport struct {
	Command         string  `json:"command"`
	Input           string  `json:"input,omitempty"`
	Output          string  `json:"output,omitempty"`
	Snapshots       int     `json:"snapshots,omitempty"`
	Atoms           int     `json:"atoms,omitempty"`
	RawBytes        int64   `json:"raw_bytes,omitempty"`
	CompressedBytes int64   `json:"compressed_bytes,omitempty"`
	Ratio           float64 `json:"ratio,omitempty"`
	// OutOfScopeRate is the fraction of quantized values that fell out of
	// quantization scope (compress.quant.outliers / compress.quant.values).
	OutOfScopeRate float64 `json:"out_of_scope_rate"`
	// StageNS totals wall time per pipeline stage, from the stage
	// histograms' sums (e.g. "compress.stage.huffman" -> ns).
	StageNS map[string]int64 `json:"stage_ns"`
	// ADPWins counts evaluation-round winners per axis and method
	// (e.g. "x.vqt" -> 3).
	ADPWins map[string]int64 `json:"adp_wins"`
	// Fault-containment counters, always present (zero on a clean run) so
	// report consumers can rely on their shape: worker panics recovered by
	// the pool, decode-memory budget rejections, and runs that ended in
	// context cancellation.
	PoolPanicsRecovered int64                  `json:"pool_panics_recovered"`
	BudgetRejections    int64                  `json:"budget_rejections"`
	CancelledRuns       int64                  `json:"cancelled_runs"`
	Telemetry           *mdz.TelemetrySnapshot `json:"telemetry"`
}

// enabled reports whether any surface needs Config.Telemetry on.
func (o *obs) enabled() bool {
	return o != nil && (o.metricsAddr != "" || o.statsJSON != "")
}

// humanOut returns the stream for human-readable summaries: stderr when the
// machine-readable report owns stdout (-stats-json -), stdout otherwise.
func (o *obs) humanOut() io.Writer {
	if o != nil && o.statsJSON == "-" {
		return os.Stderr
	}
	return os.Stdout
}

// start begins the surfaces that do not need a registry yet (CPU profile).
func (o *obs) start() error {
	if o.cpuprofile == "" {
		return nil
	}
	f, err := os.Create(o.cpuprofile)
	if err != nil {
		return err
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	o.cpuFile = f
	return nil
}

// expvar publication is process-global and rejects duplicate names, so the
// handle is registered once and follows the most recently attached registry.
var (
	expvarReg  atomic.Pointer[telemetry.Registry]
	expvarInit atomic.Bool
)

func publishExpvar(reg *mdz.TelemetryRegistry) {
	expvarReg.Store(reg)
	if expvarInit.CompareAndSwap(false, true) {
		expvar.Publish("mdz", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	}
}

// attach binds the command's telemetry registry and, if requested, starts
// the metrics listener. Call it as soon as the registry exists so the
// endpoint is live while the command works; only the first call binds.
func (o *obs) attach(reg *mdz.TelemetryRegistry) error {
	if o == nil || reg == nil || o.reg != nil {
		return nil
	}
	o.reg = reg
	publishExpvar(reg)
	if o.metricsAddr == "" {
		return nil
	}
	srv, err := obshttp.Serve(o.metricsAddr, obshttp.Mux(reg), func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mdzc: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	o.srv = srv
	fmt.Fprintf(os.Stderr, "mdzc: serving metrics on http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n",
		srv.Addr())
	return nil
}

// finish stops the profiles and listener and writes the stats report.
// Surface errors are reported but never mask the command's own outcome.
func (o *obs) finish() {
	if o == nil {
		return
	}
	if o.cpuFile != nil {
		rpprof.StopCPUProfile()
		o.cpuFile.Close()
	}
	if o.memprofile != "" {
		if f, err := os.Create(o.memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "mdzc: memprofile:", err)
		} else {
			runtime.GC() // materialize up-to-date allocation stats
			if err := rpprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mdzc: memprofile:", err)
			}
			f.Close()
		}
	}
	if o.statsJSON != "" {
		if err := o.writeStats(); err != nil {
			fmt.Fprintln(os.Stderr, "mdzc: stats-json:", err)
		}
	}
	if o.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := o.srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mdzc: metrics listener shutdown:", err)
		}
		cancel()
	}
}

// writeStats renders the -stats-json report ("-" writes to stdout).
func (o *obs) writeStats() error {
	rep := o.report
	rep.StageNS = map[string]int64{}
	rep.ADPWins = map[string]int64{}
	// A command can fail before its registry is attached (bad flags,
	// missing input). The report is still written then, with an explicit
	// "telemetry": null rather than a snapshot of nothing — consumers can
	// distinguish "no instrumentation ran" from "ran and counted zero".
	if o.reg != nil {
		rep.Telemetry = o.reg.Snapshot()
	}
	if rep.Telemetry != nil {
		for name, h := range rep.Telemetry.Histograms {
			if stage, ok := strings.CutSuffix(name, ".ns"); ok && strings.Contains(stage, ".stage.") {
				rep.StageNS[stage] = h.Sum
			}
		}
		for name, v := range rep.Telemetry.Counters {
			if rest, ok := strings.CutPrefix(name, "compress.adp."); ok {
				if axis, method, ok := strings.Cut(rest, ".win."); ok {
					rep.ADPWins[axis+"."+method] = v
				}
			}
		}
		if vals := rep.Telemetry.Counters["compress.quant.values"]; vals > 0 {
			rep.OutOfScopeRate = float64(rep.Telemetry.Counters["compress.quant.outliers"]) / float64(vals)
		}
		rep.PoolPanicsRecovered = rep.Telemetry.Counters["pool.panics_recovered"]
		rep.BudgetRejections = rep.Telemetry.Counters["budget.rejections"]
		rep.CancelledRuns = rep.Telemetry.Counters["pipeline.cancelled_runs"]
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if o.statsJSON == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(o.statsJSON, buf, 0o644)
}
