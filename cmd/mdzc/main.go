// Command mdzc compresses and decompresses .mdzd trajectory files with MDZ.
//
// Usage:
//
//	mdzc -c traj.mdzd -o traj.mdz            # compress (eps=1E-3, BS=10)
//	mdzc -c traj.xyz  -o traj.mdz            # XYZ text trajectories work too
//	mdzc -c traj.mdzd -o traj.mdz -eps 1e-4 -bs 50 -method MT
//	mdzc -c traj.mdzd -o traj.mdz -checkpoint 8  # recoverable framed stream
//	mdzc -d traj.mdz -o restored.mdzd        # decompress (or -o restored.xyz)
//	mdzc -d traj.mdz -o restored.mdzd -salvage   # recover what a corrupt stream still holds
//	mdzc -fsck traj.mdz                      # verify framing + CRCs, report salvageable ranges
//	mdzc -info traj.mdz                      # stream statistics
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/dataset"
)

const fileMagic = "MDZC"

func main() {
	compress := flag.String("c", "", "compress: input .mdzd path")
	decompress := flag.String("d", "", "decompress: input .mdz path")
	info := flag.String("info", "", "print stream statistics for a .mdz path")
	fsck := flag.String("fsck", "", "verify framing and checksums of a .mdz path, reporting salvageable ranges")
	out := flag.String("o", "", "output path")
	eps := flag.Float64("eps", 1e-3, "value-range-based error bound")
	bs := flag.Int("bs", 10, "buffer size (snapshots per batch)")
	method := flag.String("method", "ADP", "compression method: ADP, VQ, VQT, MT")
	checkpoint := flag.Int("checkpoint", 0, "with -c: write a recoverable framed stream with a checkpoint every N blocks (0 = one-shot format)")
	salvage := flag.Bool("salvage", false, "with -d: recover everything readable from a corrupt stream instead of failing")
	flag.Parse()

	var err error
	switch {
	case *compress != "":
		err = doCompress(*compress, *out, *eps, *bs, *method, *checkpoint)
	case *decompress != "":
		err = doDecompress(*decompress, *out, *salvage)
	case *info != "":
		err = doInfo(*info)
	case *fsck != "":
		err = doFsck(*fsck)
	default:
		fmt.Fprintln(os.Stderr, "mdzc: one of -c, -d, -info, -fsck required (see -h)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdzc:", err)
		os.Exit(1)
	}
}

func parseMethod(s string) (mdz.Method, error) {
	switch strings.ToUpper(s) {
	case "ADP":
		return mdz.ADP, nil
	case "VQ":
		return mdz.VQ, nil
	case "VQT":
		return mdz.VQT, nil
	case "MT":
		return mdz.MT, nil
	}
	return mdz.ADP, fmt.Errorf("unknown method %q", s)
}

func doCompress(in, out string, eps float64, bs int, methodName string, checkpoint int) error {
	if out == "" {
		return fmt.Errorf("-o required")
	}
	m, err := parseMethod(methodName)
	if err != nil {
		return err
	}
	d, err := loadTrajectory(in)
	if err != nil {
		return err
	}
	frames := make([]mdz.Frame, d.M())
	for i, f := range d.Frames {
		frames[i] = mdz.Frame{X: f.X, Y: f.Y, Z: f.Z}
	}
	cfg := mdz.Config{ErrorBound: eps, Method: m, BufferSize: bs}
	var stream []byte
	if checkpoint > 0 {
		// Framed stream with embedded recovery checkpoints: survivable by
		// -salvage and checkable by -fsck.
		cfg.CheckpointInterval = checkpoint
		var sb bytes.Buffer
		w, err := mdz.NewWriter(&sb, cfg)
		if err != nil {
			return err
		}
		for _, f := range frames {
			if err := w.WriteFrame(f); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		stream = sb.Bytes()
	} else {
		stream, err = mdz.Compress(frames, cfg)
		if err != nil {
			return err
		}
	}
	var buf []byte
	buf = append(buf, fileMagic...)
	buf = appendString(buf, d.Meta.Name)
	buf = appendString(buf, d.Meta.State)
	buf = appendString(buf, d.Meta.Code)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(stream)))
	buf = append(buf, stream...)
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("compressed %s: %d -> %d bytes (CR %.2f)\n",
		in, d.SizeBytes(), len(stream), float64(d.SizeBytes())/float64(len(stream)))
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("truncated file")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(n) {
		return "", nil, fmt.Errorf("truncated file")
	}
	return string(buf[:n]), buf[n:], nil
}

func parseContainer(path string) (meta [3]string, stream []byte, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, err
	}
	if len(buf) < 4 || string(buf[:4]) != fileMagic {
		return meta, nil, fmt.Errorf("%s is not an mdzc file", path)
	}
	buf = buf[4:]
	for i := range meta {
		meta[i], buf, err = readString(buf)
		if err != nil {
			return meta, nil, err
		}
	}
	if len(buf) < 8 {
		return meta, nil, fmt.Errorf("truncated file")
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < n {
		return meta, nil, fmt.Errorf("truncated file")
	}
	return meta, buf[:n], nil
}

// decodeStream sniffs the payload magic and decodes it with the matching
// reader: one-shot "MDZF" via Decompress, framed "MDZW"/"MDZ2" streams via
// the stream Reader. Salvage mode (framed streams only) recovers what it
// can and returns the reader's accounting alongside the frames.
func decodeStream(stream []byte, salvage bool) ([]mdz.Frame, *mdz.SalvageStats, error) {
	if len(stream) >= 4 {
		switch string(stream[:4]) {
		case "MDZW", "MDZ2":
			r := mdz.NewReaderWith(bytes.NewReader(stream), mdz.ReaderOptions{Resync: salvage})
			frames, err := r.ReadAll()
			if err != nil {
				return frames, nil, err
			}
			stats := r.SalvageStats()
			return frames, &stats, nil
		}
	}
	if salvage {
		return nil, nil, fmt.Errorf("-salvage requires a framed stream (got a one-shot payload)")
	}
	frames, err := mdz.Decompress(stream)
	return frames, nil, err
}

// parseContainerLenient parses as much of a possibly-damaged container as
// it can: metadata best-effort, and whatever payload bytes are actually
// present even if the recorded length claims more (truncated file).
func parseContainerLenient(path string) (meta [3]string, stream []byte, err error) {
	meta, stream, err = parseContainer(path)
	if err == nil {
		return meta, stream, nil
	}
	buf, rerr := os.ReadFile(path)
	if rerr != nil {
		return meta, nil, rerr
	}
	if len(buf) < 4 || string(buf[:4]) != fileMagic {
		return meta, nil, err
	}
	rest := buf[4:]
	for i := range meta {
		var s string
		s, rest, rerr = readString(rest)
		if rerr != nil {
			return meta, nil, err
		}
		meta[i] = s
	}
	if len(rest) < 8 {
		return meta, nil, err
	}
	return meta, rest[8:], nil
}

func doDecompress(in, out string, salvage bool) error {
	if out == "" {
		return fmt.Errorf("-o required")
	}
	var meta [3]string
	var stream []byte
	var err error
	if salvage {
		meta, stream, err = parseContainerLenient(in)
	} else {
		meta, stream, err = parseContainer(in)
	}
	if err != nil {
		return err
	}
	frames, stats, err := decodeStream(stream, salvage)
	if err != nil {
		return err
	}
	if stats != nil && stats.FirstError != nil {
		fmt.Fprintf(os.Stderr, "mdzc: salvage: first corrupt block %d at offset %d: %v\n",
			stats.FirstError.Block, stats.FirstError.Offset, stats.FirstError.Cause)
		fmt.Fprintf(os.Stderr, "mdzc: salvage: recovered %d snapshots (%d frames dropped, %d corrupt, truncated=%v)\n",
			len(frames), stats.DroppedFrames, stats.CorruptFrames, stats.Truncated)
	}
	d := &dataset.Dataset{Meta: dataset.Metadata{Name: meta[0], State: meta[1], Code: meta[2]}}
	for _, f := range frames {
		d.Frames = append(d.Frames, dataset.Frame{X: f.X, Y: f.Y, Z: f.Z})
	}
	if err := saveTrajectory(d, out); err != nil {
		return err
	}
	fmt.Printf("decompressed %s: %d snapshots x %d atoms -> %s\n", in, d.M(), d.N(), out)
	return nil
}

// doFsck verifies the framing and checksums of every block without writing
// any output: clean streams report their totals and exit 0; damaged ones
// report the first corrupt block's index and byte offset, plus what a
// salvage pass would recover, and exit non-zero.
func doFsck(in string) error {
	_, stream, err := parseContainerLenient(in)
	if err != nil {
		return err
	}
	if len(stream) >= 4 && string(stream[:4]) == "MDZF" {
		// One-shot payload: no framing to walk, so verify by decoding.
		frames, err := mdz.Decompress(stream)
		if err != nil {
			fmt.Printf("%s: one-shot payload FAILED verification: %v\n", in, err)
			return fmt.Errorf("fsck: %s is corrupt", in)
		}
		fmt.Printf("%s: ok (one-shot payload, %d snapshots)\n", in, len(frames))
		return nil
	}
	r := mdz.NewReaderWith(bytes.NewReader(stream), mdz.ReaderOptions{Resync: true})
	frames, err := r.ReadAll()
	if err != nil {
		return err // hard I/O failure, not a verification verdict
	}
	stats := r.SalvageStats()
	if stats.FirstError == nil && !stats.Truncated {
		fmt.Printf("%s: ok (%d snapshots, %d corrupt frames)\n", in, len(frames), stats.CorruptFrames)
		return nil
	}
	if stats.FirstError != nil {
		fmt.Printf("%s: first corrupt block %d at offset %d: %v\n",
			in, stats.FirstError.Block, stats.FirstError.Offset, stats.FirstError.Cause)
	}
	fmt.Printf("%s: salvageable: %d snapshots (%d known dropped, %d blocks skipped, %d bytes unreadable, truncated=%v)\n",
		in, len(frames), stats.DroppedFrames, stats.SkippedBlocks, stats.SkippedBytes, stats.Truncated)
	for _, lr := range stats.LostRanges {
		fmt.Printf("%s: lost frames [%d, %d)\n", in, lr.From, lr.To)
	}
	return fmt.Errorf("fsck: %s is corrupt", in)
}

func doInfo(in string) error {
	meta, stream, err := parseContainer(in)
	if err != nil {
		return err
	}
	frames, _, err := decodeStream(stream, false)
	if err != nil {
		return err
	}
	n := 0
	if len(frames) > 0 {
		n = frames[0].N()
	}
	raw := len(frames) * n * 3 * 8
	fmt.Printf("dataset: %s (%s, %s)\n", meta[0], meta[1], meta[2])
	fmt.Printf("snapshots: %d  atoms: %d\n", len(frames), n)
	fmt.Printf("compressed: %d bytes  raw: %d bytes  CR: %.2f\n",
		len(stream), raw, float64(raw)/float64(len(stream)))
	return nil
}

// loadTrajectory reads .mdzd binary or .xyz text trajectories by extension.
func loadTrajectory(path string) (*dataset.Dataset, error) {
	if strings.HasSuffix(strings.ToLower(path), ".xyz") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadXYZ(f)
	}
	return dataset.Load(path)
}

// saveTrajectory writes .mdzd binary or .xyz text by extension.
func saveTrajectory(d *dataset.Dataset, path string) error {
	if strings.HasSuffix(strings.ToLower(path), ".xyz") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := d.WriteXYZ(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return d.Save(path)
}
