// Command mdzc compresses and decompresses .mdzd trajectory files with MDZ.
//
// Usage:
//
//	mdzc -c traj.mdzd -o traj.mdz            # compress (eps=1E-3, BS=10)
//	mdzc -c traj.xyz  -o traj.mdz            # XYZ text trajectories work too
//	mdzc -c traj.mdzd -o traj.mdz -eps 1e-4 -bs 50 -method MT
//	mdzc -c traj.mdzd -o traj.mdz -checkpoint 8  # recoverable framed stream
//	mdzc -c traj.mdzd -o traj.mdz -format 3  # v3 wire format (dual-lane entropy coding)
//	mdzc -d traj.mdz -o restored.mdzd        # decompress (or -o restored.xyz)
//	mdzc -d traj.mdz -o restored.mdzd -salvage   # recover what a corrupt stream still holds
//	mdzc -d traj.mdz -o window.mdzd -range 100:200   # decode only snapshots [100, 200)
//	mdzc -index traj.mdz -o traj-indexed.mdz # retrofit a seek table onto a legacy stream
//	mdzc -fsck traj.mdz                      # verify framing + CRCs, report salvageable ranges
//	mdzc -info traj.mdz                      # stream statistics
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/safeio"
)

const fileMagic = "MDZC"

// cliFlags is the parsed command line, kept as a struct so flag-combination
// validation is testable apart from flag.Parse and os.Exit.
type cliFlags struct {
	compress, decompress, info, fsck string
	index                            string
	out, method                      string
	eps                              float64
	bs, checkpoint, format           int
	workers, shards, pipeline        int
	salvage                          bool
	seekIndex                        bool
	rangeSpec                        string
	rangeLo, rangeHi                 int
	noFsync                          bool
	maxDecode                        int64

	metricsAddr, cpuprofile, memprofile, statsJSON string
}

// testOutputWrap, when non-nil, wraps the staged output writer of every
// safeio commit — the fault-injection seam the crash-consistency tests use
// to kill a write at an exact byte. Production runs leave it nil.
var testOutputWrap func(io.Writer) io.Writer

// validateFlags rejects meaningless flag combinations; any error is a usage
// error (exit code 2).
func validateFlags(f *cliFlags) error {
	modes := 0
	for _, m := range []string{f.compress, f.decompress, f.info, f.fsck, f.index} {
		if m != "" {
			modes++
		}
	}
	if modes == 0 {
		return fmt.Errorf("one of -c, -d, -info, -fsck, -index required (see -h)")
	}
	if modes > 1 {
		return fmt.Errorf("-c, -d, -info, -fsck and -index are mutually exclusive")
	}
	if f.index != "" && f.out == "" {
		return fmt.Errorf("-index writes the retrofitted stream to -o; add -o")
	}
	if f.rangeSpec != "" {
		if f.decompress == "" {
			return fmt.Errorf("-range selects snapshots to decompress; pair it with -d")
		}
		lo, hi, err := parseRange(f.rangeSpec)
		if err != nil {
			return err
		}
		f.rangeLo, f.rangeHi = lo, hi
	}
	if f.seekIndex && (f.compress == "" || f.checkpoint == 0) {
		return fmt.Errorf("-seek-index embeds a frame index in a framed stream; pair it with -c and -checkpoint")
	}
	if f.salvage && f.decompress == "" {
		return fmt.Errorf("-salvage only applies to decompression; pair it with -d")
	}
	if f.checkpoint != 0 && f.compress == "" {
		return fmt.Errorf("-checkpoint only applies to compression; pair it with -c")
	}
	if f.format != 0 && f.format != 2 && f.format != 3 {
		return fmt.Errorf("-format must be 2 or 3, got %d", f.format)
	}
	if f.format == 3 && f.compress == "" {
		return fmt.Errorf("-format only applies to compression (readers auto-detect); pair it with -c")
	}
	if f.fsck != "" && f.out != "" {
		return fmt.Errorf("-fsck verifies in place and writes no output; drop -o")
	}
	if f.info != "" && f.out != "" {
		return fmt.Errorf("-info writes no output; drop -o")
	}
	if f.noFsync && f.compress == "" && f.decompress == "" && f.index == "" {
		return fmt.Errorf("-no-fsync only applies to commands that write output; pair it with -c, -d or -index")
	}
	if f.maxDecode < 0 {
		return fmt.Errorf("-max-decode must be non-negative, got %d", f.maxDecode)
	}
	if f.maxDecode != 0 && f.compress != "" {
		return fmt.Errorf("-max-decode bounds decoding; pair it with -d, -info or -fsck")
	}
	if f.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", f.workers)
	}
	if f.shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", f.shards)
	}
	if f.shards != 0 && f.compress == "" {
		return fmt.Errorf("-shards shapes the compressed output; pair it with -c")
	}
	if f.pipeline < 0 {
		return fmt.Errorf("-pipeline must be non-negative, got %d", f.pipeline)
	}
	if f.pipeline != 0 && f.compress != "" && f.checkpoint == 0 {
		return fmt.Errorf("-pipeline overlaps compression with framed output; pair -c with -checkpoint")
	}
	if f.pipeline != 0 && f.compress == "" && f.decompress == "" {
		return fmt.Errorf("-pipeline overlaps I/O with (de)compression; pair it with -c -checkpoint or -d")
	}
	return nil
}

// parseRange parses a -range lo:hi snapshot window (half-open, 0-based).
func parseRange(spec string) (lo, hi int, err error) {
	if _, err := fmt.Sscanf(spec, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("-range wants lo:hi (half-open snapshot window), got %q", spec)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("-range wants 0 <= lo < hi, got %q", spec)
	}
	return lo, hi, nil
}

func main() {
	var f cliFlags
	flag.StringVar(&f.compress, "c", "", "compress: input .mdzd path")
	flag.StringVar(&f.decompress, "d", "", "decompress: input .mdz path")
	flag.StringVar(&f.info, "info", "", "print stream statistics for a .mdz path")
	flag.StringVar(&f.fsck, "fsck", "", "verify framing and checksums of a .mdz path, reporting salvageable ranges")
	flag.StringVar(&f.index, "index", "", "retrofit a seek table onto a framed .mdz path written without one (output via -o; frames are copied byte-for-byte)")
	flag.StringVar(&f.out, "o", "", "output path")
	flag.Float64Var(&f.eps, "eps", 1e-3, "value-range-based error bound")
	flag.IntVar(&f.bs, "bs", 10, "buffer size (snapshots per batch)")
	flag.StringVar(&f.method, "method", "ADP", "compression method: ADP, VQ, VQT, MT")
	flag.IntVar(&f.checkpoint, "checkpoint", 0, "with -c: write a recoverable framed stream with a checkpoint every N blocks (0 = one-shot format)")
	flag.IntVar(&f.format, "format", 2, "with -c: wire-format version to write (2 = default, 3 = dual-lane entropy coding; not readable by pre-v3 builds)")
	flag.IntVar(&f.workers, "workers", 0, "goroutines for parallel kernels (0 = GOMAXPROCS, 1 = serial); output bytes never depend on it")
	flag.IntVar(&f.shards, "shards", 0, "with -c: contiguous particle shards per axis batch (0 = auto); part of the output format, so a fixed value pins output bytes across machines")
	flag.IntVar(&f.pipeline, "pipeline", 0, "with -c -checkpoint: overlap compressing the next batch with framing and writing the previous; with -d: overlap frame fetch with parallel decode, keeping up to N frames in flight (0 = synchronous; bytes identical either way)")
	flag.BoolVar(&f.salvage, "salvage", false, "with -d: recover everything readable from a corrupt stream instead of failing")
	flag.BoolVar(&f.seekIndex, "seek-index", false, "with -c -checkpoint: append a seek-table frame mapping snapshots to byte offsets, enabling O(1) -range reads")
	flag.StringVar(&f.rangeSpec, "range", "", "with -d: decode only the half-open snapshot window lo:hi (e.g. 100:200) instead of the whole stream; needs a framed input")
	flag.BoolVar(&f.noFsync, "no-fsync", false, "skip fsync when writing output: faster, but a machine crash can lose the file (the atomic temp-file+rename commit is kept either way)")
	flag.Int64Var(&f.maxDecode, "max-decode", 0, "with -d/-info/-fsck: cap decode-side memory driven by claimed sizes in the input, in bytes (0 = unlimited); over-budget inputs are rejected, not decoded")
	flag.StringVar(&f.metricsAddr, "metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars and pprof /debug/pprof/ on this address while the command runs")
	flag.StringVar(&f.cpuprofile, "cpuprofile", "", "write a CPU profile to this path")
	flag.StringVar(&f.memprofile, "memprofile", "", "write a heap profile to this path on exit")
	flag.StringVar(&f.statsJSON, "stats-json", "", "write a machine-readable run report (stage timings, ADP decisions, scope rates) to this path, or - for stdout")
	flag.Parse()

	if err := validateFlags(&f); err != nil {
		fmt.Fprintln(os.Stderr, "mdzc:", err)
		os.Exit(2)
	}
	o := &obs{metricsAddr: f.metricsAddr, cpuprofile: f.cpuprofile, memprofile: f.memprofile, statsJSON: f.statsJSON}
	if err := o.start(); err != nil {
		fmt.Fprintln(os.Stderr, "mdzc:", err)
		os.Exit(1)
	}
	var err error
	switch {
	case f.compress != "":
		err = doCompress(&f, o)
	case f.decompress != "":
		err = doDecompress(&f, o)
	case f.info != "":
		err = doInfo(&f, o)
	case f.fsck != "":
		err = doFsck(&f, o)
	case f.index != "":
		err = doIndex(&f, o)
	}
	o.finish()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdzc:", err)
		os.Exit(1)
	}
}

func doCompress(f *cliFlags, o *obs) error {
	in, out := f.compress, f.out
	if out == "" {
		return fmt.Errorf("-o required")
	}
	m, err := mdz.ParseMethod(f.method)
	if err != nil {
		return err
	}
	d, err := loadTrajectory(in)
	if err != nil {
		return err
	}
	frames := make([]mdz.Frame, d.M())
	for i, f := range d.Frames {
		frames[i] = mdz.Frame{X: f.X, Y: f.Y, Z: f.Z}
	}
	cfg := mdz.Config{
		ErrorBound: f.eps, Method: m, BufferSize: f.bs, FormatVersion: f.format,
		Workers: f.workers, Shards: f.shards, Telemetry: o.enabled(),
	}
	var stream []byte
	if f.checkpoint > 0 {
		// Framed stream with embedded recovery checkpoints: survivable by
		// -salvage and checkable by -fsck.
		cfg.CheckpointInterval = f.checkpoint
		cfg.PipelineDepth = f.pipeline
		cfg.SeekIndex = f.seekIndex
		var sb bytes.Buffer
		w, err := mdz.NewWriter(&sb, cfg)
		if err != nil {
			return err
		}
		if err := o.attach(w.TelemetryRegistry()); err != nil {
			return err
		}
		for _, f := range frames {
			if err := w.WriteFrame(f); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		stream = sb.Bytes()
	} else {
		c, err := mdz.NewCompressor(cfg)
		if err != nil {
			return err
		}
		if err := o.attach(c.TelemetryRegistry()); err != nil {
			return err
		}
		stream, err = c.Compress(frames)
		if err != nil {
			return err
		}
	}
	var buf []byte
	buf = append(buf, fileMagic...)
	buf = appendString(buf, d.Meta.Name)
	buf = appendString(buf, d.Meta.State)
	buf = appendString(buf, d.Meta.Code)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(stream)))
	buf = append(buf, stream...)
	if err := safeio.WriteFileBytes(out, buf, safeio.Options{NoSync: f.noFsync, WrapWriter: testOutputWrap}); err != nil {
		return err
	}
	o.report = statsReport{
		Command: "compress", Input: in, Output: out,
		Snapshots: d.M(), Atoms: d.N(),
		RawBytes: int64(d.SizeBytes()), CompressedBytes: int64(len(stream)),
		Ratio: float64(d.SizeBytes()) / float64(len(stream)),
	}
	fmt.Fprintf(o.humanOut(), "compressed %s: %d -> %d bytes (CR %.2f)\n",
		in, d.SizeBytes(), len(stream), float64(d.SizeBytes())/float64(len(stream)))
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("truncated file")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(n) {
		return "", nil, fmt.Errorf("truncated file")
	}
	return string(buf[:n]), buf[n:], nil
}

func parseContainer(path string) (meta [3]string, stream []byte, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, err
	}
	if len(buf) < 4 || string(buf[:4]) != fileMagic {
		return meta, nil, fmt.Errorf("%s is not an mdzc file", path)
	}
	buf = buf[4:]
	for i := range meta {
		meta[i], buf, err = readString(buf)
		if err != nil {
			return meta, nil, err
		}
	}
	if len(buf) < 8 {
		return meta, nil, fmt.Errorf("truncated file")
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < n {
		return meta, nil, fmt.Errorf("truncated file")
	}
	return meta, buf[:n], nil
}

// decodeStream sniffs the payload magic and decodes it with the matching
// reader: one-shot "MDZF" via Decompress, framed "MDZW"/"MDZ2"/"MDZ3"
// streams via the stream Reader. Salvage mode (framed streams only)
// recovers what it can and returns the reader's accounting alongside the
// frames.
func decodeStream(stream []byte, salvage bool, f *cliFlags, o *obs) ([]mdz.Frame, *mdz.SalvageStats, error) {
	if len(stream) >= 4 {
		switch string(stream[:4]) {
		case "MDZW", "MDZ2", "MDZ3":
			r := mdz.NewReaderWith(bytes.NewReader(stream),
				mdz.ReaderOptions{Workers: f.workers, Pipeline: f.pipeline, Resync: salvage,
					Telemetry: o.enabled(), MaxDecodeBytes: f.maxDecode})
			if err := o.attach(r.TelemetryRegistry()); err != nil {
				return nil, nil, err
			}
			var frames []mdz.Frame
			var err error
			if f.rangeSpec != "" {
				frames, err = r.ReadRange(f.rangeLo, f.rangeHi)
				if err == io.EOF {
					err = fmt.Errorf("-range %s starts past the end of the stream", f.rangeSpec)
				}
			} else {
				frames, err = r.ReadAll()
			}
			if err != nil {
				return frames, nil, err
			}
			stats := r.SalvageStats()
			return frames, &stats, nil
		}
	}
	if salvage {
		return nil, nil, fmt.Errorf("-salvage requires a framed stream (got a one-shot payload)")
	}
	if f.rangeSpec != "" {
		return nil, nil, fmt.Errorf("-range requires a framed stream (got a one-shot payload)")
	}
	d := mdz.NewDecompressorWith(mdz.DecompressorOptions{Workers: f.workers, Telemetry: o.enabled(), MaxDecodeBytes: f.maxDecode})
	if err := o.attach(d.TelemetryRegistry()); err != nil {
		return nil, nil, err
	}
	frames, err := d.Decompress(stream)
	return frames, nil, err
}

// parseContainerLenient parses as much of a possibly-damaged container as
// it can: metadata best-effort, and whatever payload bytes are actually
// present even if the recorded length claims more (truncated file).
func parseContainerLenient(path string) (meta [3]string, stream []byte, err error) {
	meta, stream, err = parseContainer(path)
	if err == nil {
		return meta, stream, nil
	}
	buf, rerr := os.ReadFile(path)
	if rerr != nil {
		return meta, nil, rerr
	}
	if len(buf) < 4 || string(buf[:4]) != fileMagic {
		return meta, nil, err
	}
	rest := buf[4:]
	for i := range meta {
		var s string
		s, rest, rerr = readString(rest)
		if rerr != nil {
			return meta, nil, err
		}
		meta[i] = s
	}
	if len(rest) < 8 {
		return meta, nil, err
	}
	return meta, rest[8:], nil
}

func doDecompress(f *cliFlags, o *obs) error {
	in, out, salvage := f.decompress, f.out, f.salvage
	if out == "" {
		return fmt.Errorf("-o required")
	}
	var meta [3]string
	var stream []byte
	var err error
	if salvage {
		meta, stream, err = parseContainerLenient(in)
	} else {
		meta, stream, err = parseContainer(in)
	}
	if err != nil {
		return err
	}
	frames, stats, err := decodeStream(stream, salvage, f, o)
	if err != nil {
		return err
	}
	if stats != nil && stats.FirstError != nil {
		fmt.Fprintf(os.Stderr, "mdzc: salvage: first corrupt block %d at offset %d: %v\n",
			stats.FirstError.Block, stats.FirstError.Offset, stats.FirstError.Cause)
		fmt.Fprintf(os.Stderr, "mdzc: salvage: recovered %d snapshots (%d frames dropped, %d corrupt, truncated=%v)\n",
			len(frames), stats.DroppedFrames, stats.CorruptFrames, stats.Truncated)
	}
	d := &dataset.Dataset{Meta: dataset.Metadata{Name: meta[0], State: meta[1], Code: meta[2]}}
	for _, f := range frames {
		d.Frames = append(d.Frames, dataset.Frame{X: f.X, Y: f.Y, Z: f.Z})
	}
	if err := saveTrajectory(d, out, f.noFsync); err != nil {
		return err
	}
	o.report = statsReport{
		Command: "decompress", Input: in, Output: out,
		Snapshots: d.M(), Atoms: d.N(),
		RawBytes: int64(d.SizeBytes()), CompressedBytes: int64(len(stream)),
	}
	fmt.Fprintf(o.humanOut(), "decompressed %s: %d snapshots x %d atoms -> %s\n", in, d.M(), d.N(), out)
	return nil
}

// doFsck verifies the framing and checksums of every block without writing
// any output: clean streams report their totals and exit 0; damaged ones
// report the first corrupt block's index and byte offset, plus what a
// salvage pass would recover, and exit non-zero.
func doFsck(f *cliFlags, o *obs) error {
	in := f.fsck
	_, stream, err := parseContainerLenient(in)
	if err != nil {
		return err
	}
	if len(stream) >= 4 && string(stream[:4]) == "MDZF" {
		// One-shot payload: no framing to walk, so verify by decoding.
		d := mdz.NewDecompressorWith(mdz.DecompressorOptions{MaxDecodeBytes: f.maxDecode})
		frames, err := d.Decompress(stream)
		if err != nil {
			fmt.Fprintf(o.humanOut(), "%s: one-shot payload FAILED verification: %v\n", in, err)
			return fmt.Errorf("fsck: %s is corrupt", in)
		}
		fmt.Fprintf(o.humanOut(), "%s: ok (one-shot payload, %d snapshots)\n", in, len(frames))
		return nil
	}
	r := mdz.NewReaderWith(bytes.NewReader(stream),
		mdz.ReaderOptions{Resync: true, Telemetry: o.enabled(), MaxDecodeBytes: f.maxDecode})
	if err := o.attach(r.TelemetryRegistry()); err != nil {
		return err
	}
	o.report = statsReport{Command: "fsck", Input: in}
	frames, err := r.ReadAll()
	if err != nil {
		return err // hard I/O failure, not a verification verdict
	}
	stats := r.SalvageStats()
	if stats.FirstError == nil && !stats.Truncated {
		fmt.Fprintf(o.humanOut(), "%s: ok (%d snapshots, %d corrupt frames)\n", in, len(frames), stats.CorruptFrames)
		return nil
	}
	if stats.FirstError != nil {
		fmt.Fprintf(o.humanOut(), "%s: first corrupt block %d at offset %d: %v\n",
			in, stats.FirstError.Block, stats.FirstError.Offset, stats.FirstError.Cause)
	}
	fmt.Fprintf(o.humanOut(), "%s: salvageable: %d snapshots (%d known dropped, %d blocks skipped, %d bytes unreadable, truncated=%v)\n",
		in, len(frames), stats.DroppedFrames, stats.SkippedBlocks, stats.SkippedBytes, stats.Truncated)
	for _, lr := range stats.LostRanges {
		fmt.Fprintf(o.humanOut(), "%s: lost frames [%d, %d)\n", in, lr.From, lr.To)
	}
	return fmt.Errorf("fsck: %s is corrupt", in)
}

// doIndex retrofits a seek table onto a framed stream written without one
// (-index in.mdz -o out.mdz). The container metadata and every existing
// frame are copied byte-for-byte; only the tail gains a seek-table frame —
// the output is exactly what -c -seek-index would have produced.
func doIndex(f *cliFlags, o *obs) error {
	in := f.index
	meta, stream, err := parseContainer(in)
	if err != nil {
		return err
	}
	if len(stream) < 4 {
		return fmt.Errorf("%s holds no stream payload", in)
	}
	switch string(stream[:4]) {
	case "MDZ2", "MDZ3":
	case "MDZW":
		return fmt.Errorf("-index requires a v2/v3 framed stream; %s is v1 (recompress with -checkpoint)", in)
	default:
		return fmt.Errorf("-index requires a framed stream; %s holds a one-shot payload (recompress with -checkpoint)", in)
	}
	var indexed bytes.Buffer
	frames, err := mdz.RetrofitSeekIndex(bytes.NewReader(stream), &indexed)
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, fileMagic...)
	for _, s := range meta {
		buf = appendString(buf, s)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(indexed.Len()))
	buf = append(buf, indexed.Bytes()...)
	if err := safeio.WriteFileBytes(f.out, buf, safeio.Options{NoSync: f.noFsync, WrapWriter: testOutputWrap}); err != nil {
		return err
	}
	o.report = statsReport{Command: "index", Input: in, Output: f.out, CompressedBytes: int64(indexed.Len())}
	fmt.Fprintf(o.humanOut(), "indexed %s: %d frames, %d -> %d bytes -> %s\n",
		in, frames, len(stream), indexed.Len(), f.out)
	return nil
}

func doInfo(f *cliFlags, o *obs) error {
	in := f.info
	meta, stream, err := parseContainer(in)
	if err != nil {
		return err
	}
	frames, _, err := decodeStream(stream, false, f, o)
	if err != nil {
		return err
	}
	o.report = statsReport{Command: "info", Input: in, Snapshots: len(frames)}
	n := 0
	if len(frames) > 0 {
		n = frames[0].N()
	}
	raw := len(frames) * n * 3 * 8
	fmt.Fprintf(o.humanOut(), "dataset: %s (%s, %s)\n", meta[0], meta[1], meta[2])
	fmt.Fprintf(o.humanOut(), "snapshots: %d  atoms: %d\n", len(frames), n)
	fmt.Fprintf(o.humanOut(), "compressed: %d bytes  raw: %d bytes  CR: %.2f\n",
		len(stream), raw, float64(raw)/float64(len(stream)))
	return nil
}

// loadTrajectory reads .mdzd binary or .xyz text trajectories by extension.
func loadTrajectory(path string) (*dataset.Dataset, error) {
	if strings.HasSuffix(strings.ToLower(path), ".xyz") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadXYZ(f)
	}
	return dataset.Load(path)
}

// saveTrajectory writes .mdzd binary or .xyz text by extension, committing
// through safeio so a crash mid-write never leaves a torn file under the
// output path.
func saveTrajectory(d *dataset.Dataset, path string, noFsync bool) error {
	opts := safeio.Options{NoSync: noFsync, WrapWriter: testOutputWrap}
	if strings.HasSuffix(strings.ToLower(path), ".xyz") {
		return safeio.WriteFile(path, opts, d.WriteXYZ)
	}
	return safeio.WriteFile(path, opts, d.Write)
}
