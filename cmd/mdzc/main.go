// Command mdzc compresses and decompresses .mdzd trajectory files with MDZ.
//
// Usage:
//
//	mdzc -c traj.mdzd -o traj.mdz            # compress (eps=1E-3, BS=10)
//	mdzc -c traj.xyz  -o traj.mdz            # XYZ text trajectories work too
//	mdzc -c traj.mdzd -o traj.mdz -eps 1e-4 -bs 50 -method MT
//	mdzc -d traj.mdz -o restored.mdzd        # decompress (or -o restored.xyz)
//	mdzc -info traj.mdz                      # stream statistics
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/dataset"
)

const fileMagic = "MDZC"

func main() {
	compress := flag.String("c", "", "compress: input .mdzd path")
	decompress := flag.String("d", "", "decompress: input .mdz path")
	info := flag.String("info", "", "print stream statistics for a .mdz path")
	out := flag.String("o", "", "output path")
	eps := flag.Float64("eps", 1e-3, "value-range-based error bound")
	bs := flag.Int("bs", 10, "buffer size (snapshots per batch)")
	method := flag.String("method", "ADP", "compression method: ADP, VQ, VQT, MT")
	flag.Parse()

	var err error
	switch {
	case *compress != "":
		err = doCompress(*compress, *out, *eps, *bs, *method)
	case *decompress != "":
		err = doDecompress(*decompress, *out)
	case *info != "":
		err = doInfo(*info)
	default:
		fmt.Fprintln(os.Stderr, "mdzc: one of -c, -d, -info required (see -h)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdzc:", err)
		os.Exit(1)
	}
}

func parseMethod(s string) (mdz.Method, error) {
	switch strings.ToUpper(s) {
	case "ADP":
		return mdz.ADP, nil
	case "VQ":
		return mdz.VQ, nil
	case "VQT":
		return mdz.VQT, nil
	case "MT":
		return mdz.MT, nil
	}
	return mdz.ADP, fmt.Errorf("unknown method %q", s)
}

func doCompress(in, out string, eps float64, bs int, methodName string) error {
	if out == "" {
		return fmt.Errorf("-o required")
	}
	m, err := parseMethod(methodName)
	if err != nil {
		return err
	}
	d, err := loadTrajectory(in)
	if err != nil {
		return err
	}
	frames := make([]mdz.Frame, d.M())
	for i, f := range d.Frames {
		frames[i] = mdz.Frame{X: f.X, Y: f.Y, Z: f.Z}
	}
	stream, err := mdz.Compress(frames, mdz.Config{
		ErrorBound: eps, Method: m, BufferSize: bs,
	})
	if err != nil {
		return err
	}
	var buf []byte
	buf = append(buf, fileMagic...)
	buf = appendString(buf, d.Meta.Name)
	buf = appendString(buf, d.Meta.State)
	buf = appendString(buf, d.Meta.Code)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(stream)))
	buf = append(buf, stream...)
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("compressed %s: %d -> %d bytes (CR %.2f)\n",
		in, d.SizeBytes(), len(stream), float64(d.SizeBytes())/float64(len(stream)))
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("truncated file")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(n) {
		return "", nil, fmt.Errorf("truncated file")
	}
	return string(buf[:n]), buf[n:], nil
}

func parseContainer(path string) (meta [3]string, stream []byte, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, err
	}
	if len(buf) < 4 || string(buf[:4]) != fileMagic {
		return meta, nil, fmt.Errorf("%s is not an mdzc file", path)
	}
	buf = buf[4:]
	for i := range meta {
		meta[i], buf, err = readString(buf)
		if err != nil {
			return meta, nil, err
		}
	}
	if len(buf) < 8 {
		return meta, nil, fmt.Errorf("truncated file")
	}
	n := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	if uint64(len(buf)) < n {
		return meta, nil, fmt.Errorf("truncated file")
	}
	return meta, buf[:n], nil
}

func doDecompress(in, out string) error {
	if out == "" {
		return fmt.Errorf("-o required")
	}
	meta, stream, err := parseContainer(in)
	if err != nil {
		return err
	}
	frames, err := mdz.Decompress(stream)
	if err != nil {
		return err
	}
	d := &dataset.Dataset{Meta: dataset.Metadata{Name: meta[0], State: meta[1], Code: meta[2]}}
	for _, f := range frames {
		d.Frames = append(d.Frames, dataset.Frame{X: f.X, Y: f.Y, Z: f.Z})
	}
	if err := saveTrajectory(d, out); err != nil {
		return err
	}
	fmt.Printf("decompressed %s: %d snapshots x %d atoms -> %s\n", in, d.M(), d.N(), out)
	return nil
}

func doInfo(in string) error {
	meta, stream, err := parseContainer(in)
	if err != nil {
		return err
	}
	frames, err := mdz.Decompress(stream)
	if err != nil {
		return err
	}
	n := 0
	if len(frames) > 0 {
		n = frames[0].N()
	}
	raw := len(frames) * n * 3 * 8
	fmt.Printf("dataset: %s (%s, %s)\n", meta[0], meta[1], meta[2])
	fmt.Printf("snapshots: %d  atoms: %d\n", len(frames), n)
	fmt.Printf("compressed: %d bytes  raw: %d bytes  CR: %.2f\n",
		len(stream), raw, float64(raw)/float64(len(stream)))
	return nil
}

// loadTrajectory reads .mdzd binary or .xyz text trajectories by extension.
func loadTrajectory(path string) (*dataset.Dataset, error) {
	if strings.HasSuffix(strings.ToLower(path), ".xyz") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadXYZ(f)
	}
	return dataset.Load(path)
}

// saveTrajectory writes .mdzd binary or .xyz text by extension.
func saveTrajectory(d *dataset.Dataset, path string) error {
	if strings.HasSuffix(strings.ToLower(path), ".xyz") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := d.WriteXYZ(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return d.Save(path)
}
