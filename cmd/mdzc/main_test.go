package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/faultio"
)

// TestValidateFlags covers the flag-combination holes: each invalid pairing
// must be rejected as a usage error (main maps these to exit code 2) rather
// than silently ignored.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		f       cliFlags
		wantErr bool
	}{
		{"compress ok", cliFlags{compress: "in", out: "out"}, false},
		{"decompress ok", cliFlags{decompress: "in", out: "out"}, false},
		{"salvage with -d", cliFlags{decompress: "in", out: "out", salvage: true}, false},
		{"checkpoint with -c", cliFlags{compress: "in", out: "out", checkpoint: 4}, false},
		{"fsck ok", cliFlags{fsck: "in"}, false},
		{"info ok", cliFlags{info: "in"}, false},
		{"no mode", cliFlags{}, true},
		{"two modes", cliFlags{compress: "a", decompress: "b"}, true},
		{"salvage without -d", cliFlags{compress: "in", out: "out", salvage: true}, true},
		{"salvage alone with fsck", cliFlags{fsck: "in", salvage: true}, true},
		{"checkpoint without -c", cliFlags{decompress: "in", out: "out", checkpoint: 8}, true},
		{"fsck with -o", cliFlags{fsck: "in", out: "out"}, true},
		{"info with -o", cliFlags{info: "in", out: "out"}, true},
		{"format v3 with -c", cliFlags{compress: "in", out: "out", format: 3}, false},
		{"format v2 anywhere", cliFlags{decompress: "in", out: "out", format: 2}, false},
		{"format v3 without -c", cliFlags{decompress: "in", out: "out", format: 3}, true},
		{"format out of range", cliFlags{compress: "in", out: "out", format: 5}, true},
		{"no-fsync with -c", cliFlags{compress: "in", out: "out", noFsync: true}, false},
		{"no-fsync with -d", cliFlags{decompress: "in", out: "out", noFsync: true}, false},
		{"no-fsync without output", cliFlags{fsck: "in", noFsync: true}, true},
		{"max-decode with -d", cliFlags{decompress: "in", out: "out", maxDecode: 1 << 20}, false},
		{"max-decode with -fsck", cliFlags{fsck: "in", maxDecode: 1 << 20}, false},
		{"max-decode with -c", cliFlags{compress: "in", out: "out", maxDecode: 1 << 20}, true},
		{"max-decode negative", cliFlags{decompress: "in", out: "out", maxDecode: -1}, true},
		{"workers with -c", cliFlags{compress: "in", out: "out", workers: 4}, false},
		{"workers with -d", cliFlags{decompress: "in", out: "out", workers: 4}, false},
		{"workers negative", cliFlags{compress: "in", out: "out", workers: -1}, true},
		{"shards with -c", cliFlags{compress: "in", out: "out", shards: 8}, false},
		{"shards without -c", cliFlags{decompress: "in", out: "out", shards: 8}, true},
		{"shards negative", cliFlags{compress: "in", out: "out", shards: -2}, true},
		{"pipeline with framed -c", cliFlags{compress: "in", out: "out", checkpoint: 4, pipeline: 2}, false},
		{"pipeline without checkpoint", cliFlags{compress: "in", out: "out", pipeline: 2}, true},
		{"pipeline with -d", cliFlags{decompress: "in", out: "out", pipeline: 1}, false},
		{"pipeline with -info", cliFlags{info: "in", pipeline: 1}, true},
		{"pipeline negative", cliFlags{compress: "in", out: "out", checkpoint: 4, pipeline: -1}, true},
		{"seek-index with framed -c", cliFlags{compress: "in", out: "out", checkpoint: 4, seekIndex: true}, false},
		{"seek-index without checkpoint", cliFlags{compress: "in", out: "out", seekIndex: true}, true},
		{"seek-index with -d", cliFlags{decompress: "in", out: "out", seekIndex: true}, true},
		{"range with -d", cliFlags{decompress: "in", out: "out", rangeSpec: "5:10"}, false},
		{"range without -d", cliFlags{compress: "in", out: "out", rangeSpec: "5:10"}, true},
		{"range malformed", cliFlags{decompress: "in", out: "out", rangeSpec: "5-10"}, true},
		{"range inverted", cliFlags{decompress: "in", out: "out", rangeSpec: "10:5"}, true},
		{"index with -o", cliFlags{index: "in", out: "out"}, false},
		{"index without -o", cliFlags{index: "in"}, true},
		{"index plus -d", cliFlags{index: "in", decompress: "in2", out: "out"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(&tc.f)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateFlags(%+v) error = %v, wantErr %v", tc.f, err, tc.wantErr)
			}
		})
	}
}

// writeTestTrajectory saves a small synthetic trajectory and returns its path.
func writeTestTrajectory(t *testing.T, dir string) string {
	t.Helper()
	d := &dataset.Dataset{Meta: dataset.Metadata{Name: "test", State: "solid", Code: "synthetic"}}
	const m, n = 12, 64
	for s := 0; s < m; s++ {
		f := dataset.NewFrame(n)
		for i := 0; i < n; i++ {
			base := float64(i%8) + 0.05*math.Sin(float64(s)*0.3+float64(i))
			f.X[i] = base
			f.Y[i] = base * 0.5
			f.Z[i] = -base
		}
		d.Frames = append(d.Frames, f)
	}
	path := filepath.Join(dir, "traj.mdzd")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFormatV3RoundTrip drives -c -format 3 (one-shot and framed) through
// the CLI paths and decodes the result with the auto-detecting reader.
func TestFormatV3RoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	for _, tc := range []struct {
		name       string
		checkpoint int
		wantMagic  string
	}{
		{"oneshot", 0, "MDZF"},
		{"framed", 2, "MDZ3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			outPath := filepath.Join(dir, tc.name+".mdz")
			f := &cliFlags{
				compress: in, out: outPath,
				eps: 1e-3, bs: 4, method: "ADP",
				format: 3, checkpoint: tc.checkpoint,
			}
			if err := doCompress(f, &obs{}); err != nil {
				t.Fatal(err)
			}
			_, stream, err := parseContainer(outPath)
			if err != nil {
				t.Fatal(err)
			}
			if got := string(stream[:4]); got != tc.wantMagic {
				t.Fatalf("payload magic = %q, want %q", got, tc.wantMagic)
			}
			restored := filepath.Join(dir, tc.name+".out.mdzd")
			df := &cliFlags{decompress: outPath, out: restored}
			if err := doDecompress(df, &obs{}); err != nil {
				t.Fatal(err)
			}
			d, err := dataset.Load(restored)
			if err != nil {
				t.Fatal(err)
			}
			if d.M() != 12 || d.N() != 64 {
				t.Fatalf("restored %dx%d, want 12x64", d.M(), d.N())
			}
		})
	}
}

// TestParallelKnobsRoundTrip drives -workers/-shards/-pipeline through the
// CLI compress path and checks two properties: the output round-trips, and
// the bytes match a run without -workers/-pipeline (only -shards may change
// the format, never the execution knobs).
func TestParallelKnobsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	tuned := filepath.Join(dir, "tuned.mdz")
	f := &cliFlags{
		compress: in, out: tuned,
		eps: 1e-3, bs: 4, method: "ADP", format: 2,
		checkpoint: 2, workers: 2, shards: 4, pipeline: 2,
	}
	if err := validateFlags(f); err != nil {
		t.Fatal(err)
	}
	if err := doCompress(f, &obs{}); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.mdz")
	pf := &cliFlags{
		compress: in, out: plain,
		eps: 1e-3, bs: 4, method: "ADP", format: 2,
		checkpoint: 2, shards: 4,
	}
	if err := doCompress(pf, &obs{}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(tuned)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("-workers/-pipeline changed output bytes; they must be execution-only knobs")
	}
	restored := filepath.Join(dir, "restored.mdzd")
	df := &cliFlags{decompress: tuned, out: restored, workers: 2}
	if err := doDecompress(df, &obs{}); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Load(restored)
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 12 || d.N() != 64 {
		t.Fatalf("restored %dx%d, want 12x64", d.M(), d.N())
	}
}

// TestStatsJSONShape runs a real compression through the obs plumbing and
// checks the -stats-json document's shape: valid JSON with stage timings,
// ADP winner counts and the out-of-scope rate derived from the snapshot.
func TestStatsJSONShape(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	statsPath := filepath.Join(dir, "stats.json")
	f := &cliFlags{
		compress: in, out: filepath.Join(dir, "traj.mdz"),
		eps: 1e-3, bs: 4, method: "ADP", statsJSON: statsPath,
	}
	o := &obs{statsJSON: statsPath}
	if err := doCompress(f, o); err != nil {
		t.Fatal(err)
	}
	o.finish()

	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep statsReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats-json is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Command != "compress" || rep.Input != in {
		t.Errorf("report identity = %q/%q", rep.Command, rep.Input)
	}
	if rep.RawBytes <= 0 || rep.CompressedBytes <= 0 || rep.Ratio <= 0 {
		t.Errorf("size accounting missing: raw=%d comp=%d ratio=%v",
			rep.RawBytes, rep.CompressedBytes, rep.Ratio)
	}
	for _, stage := range []string{
		"compress.stage.kmeans_fit",
		"compress.stage.predict_quant",
		"compress.stage.huffman",
		"compress.stage.lossless",
		"compress.stage.batch",
	} {
		if _, ok := rep.StageNS[stage]; !ok {
			t.Errorf("stage_ns missing %q (have %v)", stage, rep.StageNS)
		}
	}
	// ADP ran (batches 0 and 1 always evaluate), so each axis records wins.
	total := int64(0)
	for _, v := range rep.ADPWins {
		total += v
	}
	if total == 0 {
		t.Errorf("adp_wins empty: %v", rep.ADPWins)
	}
	if rep.OutOfScopeRate < 0 || rep.OutOfScopeRate > 1 || math.IsNaN(rep.OutOfScopeRate) {
		t.Errorf("out_of_scope_rate = %v", rep.OutOfScopeRate)
	}
	if rep.Telemetry == nil || rep.Telemetry.Counters["compress.quant.values"] == 0 {
		t.Error("raw telemetry snapshot missing or empty")
	}
	// The fault-containment counters must be present in the document even
	// when zero — consumers rely on the shape, not on lucky incidents.
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pool_panics_recovered", "budget_rejections", "cancelled_runs"} {
		if _, ok := shape[key]; !ok {
			t.Errorf("stats-json missing %q on a clean run", key)
		}
	}
}

// TestStatsJSONBeforeAttach covers the failed-before-attach path: when the
// command dies before its telemetry registry exists (missing input here),
// the report must still be written, with an explicit "telemetry": null so
// consumers can tell "no instrumentation ran" from "ran and counted zero".
func TestStatsJSONBeforeAttach(t *testing.T) {
	dir := t.TempDir()
	statsPath := filepath.Join(dir, "stats.json")
	f := &cliFlags{
		compress: filepath.Join(dir, "no-such-trajectory.xyz"),
		out:      filepath.Join(dir, "traj.mdz"),
		eps:      1e-3, bs: 4, method: "ADP", statsJSON: statsPath,
	}
	o := &obs{statsJSON: statsPath}
	o.report.Command = "compress"
	if err := doCompress(f, o); err == nil {
		t.Fatal("doCompress succeeded on a missing input")
	}
	o.finish()

	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats-json not written on a pre-attach failure: %v", err)
	}
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatalf("stats-json is not valid JSON: %v\n%s", err, raw)
	}
	tele, ok := shape["telemetry"]
	if !ok {
		t.Fatalf("stats-json omitted the telemetry key:\n%s", raw)
	}
	if string(tele) != "null" {
		t.Errorf("telemetry = %s, want an explicit null", tele)
	}
}

// TestMetricsEndpoint drives a compression with -metrics-addr on a loopback
// port and scrapes all three surfaces: Prometheus text, expvar JSON, pprof.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	f := &cliFlags{
		compress: in, out: filepath.Join(dir, "traj.mdz"),
		eps: 1e-3, bs: 4, method: "ADP",
	}
	o := &obs{metricsAddr: "127.0.0.1:0"}
	if err := doCompress(f, o); err != nil {
		t.Fatal(err)
	}
	if o.srv == nil || o.srv.Addr() == "" {
		t.Fatal("metrics server did not start")
	}
	defer o.finish()
	base := "http://" + o.srv.Addr()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE mdz_compress_stage_huffman_ns histogram",
		"mdz_compress_quant_values_total",
		"mdz_pool_tasks_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if _, ok := decoded["mdz"]; !ok {
		t.Error("expvar output missing the mdz variable")
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("pprof index did not render")
	}
}

// TestCompressCrashMatrix kills the output write of mdzc -c at a sweep of
// byte offsets and checks the crash-consistency contract: the output path
// is either absent or holds the complete, -fsck-clean file — never a torn
// prefix under the final name.
func TestCompressCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	out := filepath.Join(dir, "out.mdz")
	f := &cliFlags{compress: in, out: out, eps: 1e-3, bs: 4, method: "ADP", checkpoint: 2}

	// Clean run first, to learn the deterministic output size.
	if err := doCompress(f, &obs{}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(full))
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	defer func() { testOutputWrap = nil }()

	// Sweep kill points across the write: every byte of the first 64 (the
	// magic and header region), then strided coverage of the rest — or
	// every single byte when MDZ_CHAOS_SWEEP is set (the `make chaos`
	// mode).
	stride := total / 61
	if stride < 1 || os.Getenv("MDZ_CHAOS_SWEEP") != "" {
		stride = 1
	}
	var kills []int64
	for n := int64(0); n < total && n < 64; n++ {
		kills = append(kills, n)
	}
	for n := int64(64); n < total; n += stride {
		kills = append(kills, n)
	}
	for _, n := range kills {
		n := n
		testOutputWrap = func(w io.Writer) io.Writer { return faultio.NewWriter(w).AbortAt(n) }
		if err := doCompress(f, &obs{}); !errors.Is(err, faultio.ErrAborted) {
			t.Fatalf("kill at byte %d: err = %v, want ErrAborted", n, err)
		}
		if _, serr := os.Stat(out); !os.IsNotExist(serr) {
			t.Fatalf("kill at byte %d left a file under the output path", n)
		}
	}

	// A crash after the last payload byte commits a complete file that
	// passes verification.
	testOutputWrap = func(w io.Writer) io.Writer { return faultio.NewWriter(w).AbortAt(total + 1) }
	if err := doCompress(f, &obs{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil || int64(len(got)) != total {
		t.Fatalf("committed %d bytes, %v; want the full %d", len(got), err, total)
	}
	testOutputWrap = nil
	if err := doFsck(&cliFlags{fsck: out}, &obs{}); err != nil {
		t.Fatalf("committed file fails -fsck: %v", err)
	}
}

// TestNoFsyncRoundTrip: -no-fsync output must be byte-identical to the
// synced path — the flag only trades crash durability, never content.
func TestNoFsyncRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	synced, unsynced := filepath.Join(dir, "a.mdz"), filepath.Join(dir, "b.mdz")
	if err := doCompress(&cliFlags{compress: in, out: synced, eps: 1e-3, bs: 4, method: "ADP"}, &obs{}); err != nil {
		t.Fatal(err)
	}
	if err := doCompress(&cliFlags{compress: in, out: unsynced, eps: 1e-3, bs: 4, method: "ADP", noFsync: true}, &obs{}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(synced)
	b, _ := os.ReadFile(unsynced)
	if !bytes.Equal(a, b) {
		t.Error("-no-fsync changed the output bytes")
	}
}

// TestMaxDecodeFlag: a starved -max-decode rejects decompression with the
// budget sentinel and leaves no output file; a generous cap round-trips.
func TestMaxDecodeFlag(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	cmp := filepath.Join(dir, "traj.mdz")
	if err := doCompress(&cliFlags{compress: in, out: cmp, eps: 1e-3, bs: 4, method: "ADP"}, &obs{}); err != nil {
		t.Fatal(err)
	}
	restored := filepath.Join(dir, "restored.mdzd")
	err := doDecompress(&cliFlags{decompress: cmp, out: restored, maxDecode: 64}, &obs{})
	if !errors.Is(err, mdz.ErrBudgetExceeded) {
		t.Fatalf("starved -max-decode err = %v, want ErrBudgetExceeded", err)
	}
	if _, serr := os.Stat(restored); !os.IsNotExist(serr) {
		t.Fatal("rejected decode still wrote an output file")
	}
	if err := doDecompress(&cliFlags{decompress: cmp, out: restored, maxDecode: 1 << 30}, &obs{}); err != nil {
		t.Fatal(err)
	}
	if d, err := dataset.Load(restored); err != nil || d.M() != 12 {
		t.Fatalf("round trip under generous budget: %v", err)
	}
}

// TestRangeAndIndexCLI drives the random-access surface end to end:
// -c -seek-index writes an indexed stream, -d -range decodes exactly the
// requested window (pipelined and serial alike), and -index retrofits a
// legacy stream into bytes identical to the natively indexed one.
func TestRangeAndIndexCLI(t *testing.T) {
	dir := t.TempDir()
	in := writeTestTrajectory(t, dir)
	indexed := filepath.Join(dir, "indexed.mdz")
	if err := doCompress(&cliFlags{
		compress: in, out: indexed,
		eps: 1e-3, bs: 2, method: "ADP", format: 2,
		checkpoint: 2, seekIndex: true,
	}, &obs{}); err != nil {
		t.Fatal(err)
	}

	full := filepath.Join(dir, "full.mdzd")
	if err := doDecompress(&cliFlags{decompress: indexed, out: full}, &obs{}); err != nil {
		t.Fatal(err)
	}
	want, err := dataset.Load(full)
	if err != nil {
		t.Fatal(err)
	}

	for _, pipeline := range []int{0, 4} {
		window := filepath.Join(dir, "window.mdzd")
		f := &cliFlags{decompress: indexed, out: window, rangeSpec: "5:9", pipeline: pipeline}
		if err := validateFlags(f); err != nil {
			t.Fatal(err)
		}
		if err := doDecompress(f, &obs{}); err != nil {
			t.Fatal(err)
		}
		got, err := dataset.Load(window)
		if err != nil {
			t.Fatal(err)
		}
		if got.M() != 4 {
			t.Fatalf("pipeline %d: -range 5:9 decoded %d snapshots, want 4", pipeline, got.M())
		}
		for s := 0; s < 4; s++ {
			for i := range got.Frames[s].X {
				if got.Frames[s].X[i] != want.Frames[5+s].X[i] {
					t.Fatalf("pipeline %d: window snapshot %d differs from full decode", pipeline, s)
				}
			}
		}
		os.Remove(window)
	}

	// A past-the-end range is a clean error, not an empty output file.
	f := &cliFlags{decompress: indexed, out: filepath.Join(dir, "none.mdzd"), rangeSpec: "100:200"}
	if err := validateFlags(f); err != nil {
		t.Fatal(err)
	}
	if err := doDecompress(f, &obs{}); err == nil || !strings.Contains(err.Error(), "past the end") {
		t.Fatalf("past-end -range err = %v", err)
	}

	// Retrofit: compress the same input without an index, -index it, and
	// compare payload bytes against the natively indexed stream.
	legacy := filepath.Join(dir, "legacy.mdz")
	if err := doCompress(&cliFlags{
		compress: in, out: legacy,
		eps: 1e-3, bs: 2, method: "ADP", format: 2, checkpoint: 2,
	}, &obs{}); err != nil {
		t.Fatal(err)
	}
	retro := filepath.Join(dir, "retro.mdz")
	if err := doIndex(&cliFlags{index: legacy, out: retro}, &obs{}); err != nil {
		t.Fatal(err)
	}
	_, wantStream, err := parseContainer(indexed)
	if err != nil {
		t.Fatal(err)
	}
	_, gotStream, err := parseContainer(retro)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotStream, wantStream) {
		t.Fatal("-index output differs from a natively -seek-index stream")
	}

	// Retrofitting twice or indexing a one-shot payload is rejected.
	if err := doIndex(&cliFlags{index: retro, out: filepath.Join(dir, "again.mdz")}, &obs{}); err == nil {
		t.Fatal("-index accepted an already-indexed stream")
	}
	oneshot := filepath.Join(dir, "oneshot.mdz")
	if err := doCompress(&cliFlags{compress: in, out: oneshot, eps: 1e-3, bs: 4, method: "ADP"}, &obs{}); err != nil {
		t.Fatal(err)
	}
	if err := doIndex(&cliFlags{index: oneshot, out: filepath.Join(dir, "bad.mdz")}, &obs{}); err == nil {
		t.Fatal("-index accepted a one-shot payload")
	}

	// The indexed stream still passes -fsck.
	if err := doFsck(&cliFlags{fsck: indexed}, &obs{}); err != nil {
		t.Fatalf("-fsck on indexed stream: %v", err)
	}
}
