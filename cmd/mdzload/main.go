// Command mdzload is the mdzd load harness: it drives many concurrent
// streaming sessions against a daemon — an external one (-addr) or one it
// spawns in-process (-spawn) — and optionally verifies that a fraction of
// the returned containers are byte-identical to what the mdz library
// produces for the same input locally.
//
//	mdzload -spawn -sessions 256 -frames 40 -atoms 300 -c 32 -verify 0.1
//
// Exit status is non-zero on any session failure or verification mismatch,
// so it doubles as a CI smoke test.
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/daemon"
	"github.com/mdz/mdz/internal/obshttp"
)

func main() {
	var (
		addr     = flag.String("addr", "", "address of a running mdzd (host:port)")
		spawn    = flag.Bool("spawn", false, "spawn an in-process daemon instead of targeting -addr")
		sessions = flag.Int("sessions", 64, "number of sessions to run")
		frames   = flag.Int("frames", 32, "snapshots per session")
		atoms    = flag.Int("atoms", 200, "atoms per snapshot")
		workers  = flag.Int("c", 16, "concurrent client workers")
		eps      = flag.Float64("eps", 1e-3, "error bound")
		format   = flag.Int("format", 0, "container format version (0/2 = v2, 3 = v3)")
		verify   = flag.Float64("verify", 0.1, "fraction of sessions whose containers are byte-compared against a local library run")
		seed     = flag.Int64("seed", 1, "base RNG seed (session i uses seed+i)")
	)
	flag.Parse()
	if err := run(*addr, *spawn, *sessions, *frames, *atoms, *workers, *eps, *format, *verify, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mdzload:", err)
		os.Exit(1)
	}
}

func run(addr string, spawn bool, sessions, frames, atoms, workers int, eps float64, format int, verify float64, seed int64) error {
	if spawn {
		srv, err := daemon.New(daemon.Options{})
		if err != nil {
			return err
		}
		defer srv.Close()
		api, err := obshttp.Serve("127.0.0.1:0", srv.Handler(), nil)
		if err != nil {
			return err
		}
		addr = api.Addr()
		fmt.Fprintf(os.Stderr, "mdzload: spawned daemon on %s\n", addr)
	}
	if addr == "" {
		return fmt.Errorf("either -addr or -spawn is required")
	}
	base := "http://" + addr
	client := &http.Client{}

	var (
		failures atomic.Int64
		rawBytes atomic.Int64
		verified atomic.Int64
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				doVerify := verify > 0 && float64(i%100) < verify*100
				if err := runSession(client, base, i, frames, atoms, eps, format, seed+int64(i), doVerify); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "mdzload: session %d: %v\n", i, err)
					continue
				}
				rawBytes.Add(int64(frames) * int64(atoms) * 24)
				if doVerify {
					verified.Add(1)
				}
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	mb := float64(rawBytes.Load()) / (1 << 20)
	fmt.Printf("mdzload: %d sessions (%d failed), %d frames x %d atoms, %.1f MiB raw in %v (%.1f MiB/s), %d verified byte-identical\n",
		sessions, failures.Load(), frames, atoms, mb, wall.Round(time.Millisecond),
		mb/wall.Seconds(), verified.Load())
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d of %d sessions failed", n, sessions)
	}
	return nil
}

// makeFrames builds a deterministic random-walk trajectory.
func makeFrames(m, n int, seed int64) []mdz.Frame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]mdz.Frame, m)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
	}
	for t := 0; t < m; t++ {
		f := mdz.Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
		for i := 0; i < n; i++ {
			x[i] += rng.NormFloat64() * 0.05
			y[i] += rng.NormFloat64() * 0.05
			z[i] += rng.NormFloat64() * 0.05
			f.X[i], f.Y[i], f.Z[i] = x[i], y[i], z[i]
		}
		frames[t] = f
	}
	return frames
}

// encodeWire renders frames in the daemon's ingest record format: a
// uint32 LE atom count, then X, Y, Z each as n float64s LE.
func encodeWire(frames []mdz.Frame) []byte {
	var buf bytes.Buffer
	for _, f := range frames {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(f.X)))
		buf.Write(hdr[:])
		for _, axis := range [][]float64{f.X, f.Y, f.Z} {
			for _, v := range axis {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				buf.Write(b[:])
			}
		}
	}
	return buf.Bytes()
}

func runSession(client *http.Client, base string, idx, frames, atoms int, eps float64, format int, seed int64, verify bool) error {
	traj := makeFrames(frames, atoms, seed)

	// Open.
	cfgBody := fmt.Sprintf(`{"tenant":"load%d","error_bound":%g,"format_version":%d}`, idx%8, eps, format)
	resp, err := client.Post(base+"/v1/sessions", "application/json", strings.NewReader(cfgBody))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: %d %s", resp.StatusCode, body)
	}
	id, err := jsonField(body, "id")
	if err != nil {
		return err
	}

	// Stream frames in two chunks to exercise multiple ingest requests.
	half := len(traj) / 2
	for _, chunk := range [][]mdz.Frame{traj[:half], traj[half:]} {
		if len(chunk) == 0 {
			continue
		}
		resp, err := client.Post(base+"/v1/sessions/"+id+"/frames", "application/octet-stream",
			bytes.NewReader(encodeWire(chunk)))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("ingest: %d %s", resp.StatusCode, body)
		}
	}

	// Close.
	resp, err = client.Post(base+"/v1/sessions/"+id+"/close", "", nil)
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("close: %d %s", resp.StatusCode, body)
	}

	// Fetch the container.
	resp, err = client.Get(base + "/v1/sessions/" + id + "/stream")
	if err != nil {
		return err
	}
	container, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %d", resp.StatusCode)
	}

	// Delete (frees server memory).
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	if !verify {
		// Cheap sanity check: the container must decode to the right count.
		got, err := mdz.NewReader(bytes.NewReader(container)).ReadAll()
		if err != nil {
			return fmt.Errorf("container does not decode: %w", err)
		}
		if len(got) != frames {
			return fmt.Errorf("container holds %d frames, want %d", len(got), frames)
		}
		return nil
	}

	// Full verification: the daemon's container must be byte-identical to
	// a local library run over the same input.
	var want bytes.Buffer
	w, err := mdz.NewWriter(&want, mdz.Config{ErrorBound: eps, FormatVersion: format})
	if err != nil {
		return err
	}
	for _, f := range traj {
		if err := w.WriteFrame(f); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if !bytes.Equal(container, want.Bytes()) {
		return fmt.Errorf("container diverges from the local library run (%d vs %d bytes)",
			len(container), want.Len())
	}
	return nil
}

// jsonField pulls one string field out of a flat JSON object without
// pulling in a struct per response shape.
func jsonField(body []byte, key string) (string, error) {
	marker := `"` + key + `":"`
	i := bytes.Index(body, []byte(marker))
	if i < 0 {
		return "", fmt.Errorf("no %q in %s", key, body)
	}
	rest := body[i+len(marker):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("unterminated %q in %s", key, body)
	}
	return string(rest[:j]), nil
}
