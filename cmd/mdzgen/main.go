// Command mdzgen synthesizes MD / cosmology trajectory analogs (the
// datasets of the paper's Table I plus HACC) and writes them as .mdzd
// container files for use with mdzc.
//
// Usage:
//
//	mdzgen -list
//	mdzgen -dataset Copper-B -out copperb.mdzd
//	mdzgen -dataset LJ -atoms 32000 -snapshots 50 -out lj.mdzd
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mdz/mdz/internal/gen"
)

func main() {
	name := flag.String("dataset", "", "dataset analog name (see -list)")
	out := flag.String("out", "", "output .mdzd path")
	atoms := flag.Int("atoms", 0, "override particle count (0 = default)")
	snapshots := flag.Int("snapshots", 0, "override snapshot count (0 = default)")
	seed := flag.Int64("seed", 42, "generation seed")
	list := flag.Bool("list", false, "list dataset analogs")
	flag.Parse()

	if *list {
		for _, n := range gen.Names() {
			fmt.Println(n)
		}
		return
	}
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "mdzgen: -dataset and -out required (see -h)")
		os.Exit(2)
	}
	d, err := gen.Generate(*name, gen.Options{Atoms: *atoms, Snapshots: *snapshots, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdzgen:", err)
		os.Exit(1)
	}
	if err := d.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "mdzgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d snapshots x %d atoms (%.1f MB raw)\n",
		*out, d.M(), d.N(), float64(d.SizeBytes())/1e6)
}
