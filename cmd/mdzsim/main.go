// Command mdzsim runs the Lennard-Jones benchmark with an inline MDZ dump
// hook — the reproduction of the paper's LAMMPS integration study (Table
// VII). It reports the runtime breakdown with and without compression.
//
// Usage:
//
//	mdzsim -atoms 4000 -steps 2000 -save 100
//	mdzsim -atoms 32000 -steps 1000 -save 20 -dir /tmp
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mdz/mdz/internal/bench"
)

func main() {
	atoms := flag.Int("atoms", 4000, "number of atoms (rounded to FCC cells)")
	steps := flag.Int("steps", 1000, "simulation steps")
	save := flag.Int("save", 100, "dump a snapshot every N steps")
	dir := flag.String("dir", os.TempDir(), "directory for dump files")
	flag.Parse()

	fmt.Printf("LJ benchmark: %d atoms, %d steps, save every %d\n\n", *atoms, *steps, *save)
	fmt.Printf("%-10s %-10s %-8s %-9s %-10s\n", "option", "duration", "comp%", "output%", "dumpMB")
	for _, compress := range []bool{false, true} {
		total, compute, output, bytes, err := bench.SimulateLJ(*atoms, *steps, *save, compress, *dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdzsim:", err)
			os.Exit(1)
		}
		opt := "w/o MDZ"
		if compress {
			opt = "w MDZ"
		}
		fmt.Printf("%-10s %-10s %-8.1f %-9.2f %-10.2f\n", opt,
			fmt.Sprintf("%.2fs", total.Seconds()),
			100*compute.Seconds()/total.Seconds(),
			100*output.Seconds()/total.Seconds(),
			float64(bytes)/1e6)
	}
}
