package main

import (
	"fmt"
	"os"

	"github.com/mdz/mdz/internal/bench"
)

// runEntropy runs the entropy-stage benchmark, prints the human-readable
// table, and optionally writes the JSON report and/or diffs the run against
// a previously committed report. formats picks the wire-format versions to
// measure (empty = both v2 and v3).
func runEntropy(jsonPath, comparePath string, cfg bench.Config, formats ...int) error {
	rep, err := bench.RunEntropy(cfg, formats...)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return err
		}
		old, err := bench.ReadEntropyReport(data)
		if err != nil {
			return fmt.Errorf("%s: %w", comparePath, err)
		}
		fmt.Println()
		return bench.CompareEntropy(os.Stdout, old, rep)
	}
	return nil
}
