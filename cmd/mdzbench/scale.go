package main

import (
	"fmt"
	"os"

	"github.com/mdz/mdz/internal/bench"
)

// runScale runs the multi-worker scaling benchmark, prints the table, and
// optionally writes the JSON report and/or diffs (warn-only) against a
// previously committed report.
func runScale(jsonPath, comparePath string, cfg bench.Config) error {
	rep, err := bench.RunScale(cfg)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return err
		}
		old, err := bench.ReadScaleReport(data)
		if err != nil {
			return fmt.Errorf("%s: %w", comparePath, err)
		}
		fmt.Println()
		return bench.CompareScale(os.Stdout, old, rep)
	}
	return nil
}
