// Command mdzbench regenerates the paper's evaluation tables and figures on
// the synthesized dataset analogs.
//
// Usage:
//
//	mdzbench -exp fig12               # one experiment
//	mdzbench -exp all                 # everything (slow)
//	mdzbench -list                    # show experiment ids
//	mdzbench -exp fig13 -datascale 0.5 # smaller datasets
//	mdzbench -exp tab5 -csv           # machine-readable output
//
// The entropy-stage benchmark (per-stage MB/s, ns/value and compression
// ratio per method) has its own mode:
//
//	mdzbench -entropy                          # human-readable table
//	mdzbench -entropy -json BENCH_entropy.json # also write the JSON report
//	mdzbench -entropy -compare BENCH_entropy.json # diff against a report
//
// The multi-worker scaling benchmark (Writer compress MB/s over the
// Workers x Shards grid, baseline vs pipelined/amortized knobs):
//
//	mdzbench -scale                         # human-readable table
//	mdzbench -scale -json BENCH_scale.json  # also write the JSON report
//	mdzbench -scale -compare BENCH_scale.json # warn-only diff against a report
//
// The fast-read-path benchmark (ReadRange of a tail window vs serial prefix
// decode on an indexed stream, plus full decode over the pipeline x workers
// grid):
//
//	mdzbench -read                          # human-readable table
//	mdzbench -read -json BENCH_read.json    # also write the JSON report
//	mdzbench -read -compare BENCH_read.json # warn-only diff against a report
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/mdz/mdz/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig3..fig16, tab2..tab7) or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("datascale", 1.0, "dataset scale factor")
	seed := flag.Int64("seed", 42, "dataset generation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write <exp>.csv files into this directory")
	entropy := flag.Bool("entropy", false, "run the entropy-stage benchmark")
	scaleBench := flag.Bool("scale", false, "run the multi-worker scaling benchmark (Workers x Shards grid)")
	readBench := flag.Bool("read", false, "run the fast-read-path benchmark (ranged access + pipeline x workers grid)")
	jsonPath := flag.String("json", "", "with -entropy/-scale/-read: write the machine-readable report to this path")
	compare := flag.String("compare", "", "with -entropy/-scale/-read: diff the run against a committed report")
	format := flag.String("format", "all", "with -entropy: wire-format versions to measure (v2, v3 or all)")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*entropy, *scaleBench, *readBench} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "mdzbench: -entropy, -scale and -read are mutually exclusive")
		os.Exit(2)
	}
	if *readBench {
		if err := runRead(*jsonPath, *compare, bench.Config{Scale: *scale, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "mdzbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaleBench {
		if err := runScale(*jsonPath, *compare, bench.Config{Scale: *scale, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "mdzbench:", err)
			os.Exit(1)
		}
		return
	}
	if *entropy {
		var formats []int
		switch *format {
		case "v2":
			formats = []int{2}
		case "v3":
			formats = []int{3}
		case "all", "":
		default:
			fmt.Fprintf(os.Stderr, "mdzbench: -format must be v2, v3 or all, got %q\n", *format)
			os.Exit(2)
		}
		if err := runEntropy(*jsonPath, *compare, bench.Config{Scale: *scale, Seed: *seed}, formats...); err != nil {
			fmt.Fprintln(os.Stderr, "mdzbench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Printf("%-6s %s\n", id, bench.Title(id))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mdzbench: -exp or -list required (see -h)")
		os.Exit(2)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdzbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			if _, err := rep.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mdzbench:", err)
				os.Exit(1)
			}
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mdzbench:", err)
				os.Exit(1)
			}
		}
	}
}
