package main

import (
	"fmt"
	"os"

	"github.com/mdz/mdz/internal/bench"
)

// runRead runs the fast-read-path benchmark (ranged access vs serial prefix
// decode, plus the pipelined full-decode grid), prints the table, and
// optionally writes the JSON report and/or diffs (warn-only) against a
// previously committed report.
func runRead(jsonPath, comparePath string, cfg bench.Config) error {
	rep, err := bench.RunRead(cfg)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return err
		}
		old, err := bench.ReadReadReport(data)
		if err != nil {
			return fmt.Errorf("%s: %w", comparePath, err)
		}
		fmt.Println()
		return bench.CompareRead(os.Stdout, old, rep)
	}
	return nil
}
