package mdz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeFrames builds a crystalline-in-x, liquid-in-y, constant-in-z
// trajectory so the three axes exercise different methods under ADP.
func makeFrames(m, n int, seed int64) []Frame {
	rng := rand.New(rand.NewSource(seed))
	levels := make([]int, n)
	posY := make([]float64, n)
	for i := range levels {
		levels[i] = rng.Intn(10)
		posY[i] = rng.Float64() * 30
	}
	frames := make([]Frame, m)
	for t := range frames {
		f := Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
		for i := 0; i < n; i++ {
			f.X[i] = 3.0*float64(levels[i]) + rng.NormFloat64()*0.02
			posY[i] += rng.NormFloat64() * 0.001
			f.Y[i] = posY[i]
			f.Z[i] = 7.25
		}
		frames[t] = f
	}
	return frames
}

func frameRange(frames []Frame, axis int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, f := range frames {
		for _, v := range axisSeries([]Frame{f}, axis)[0] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return hi - lo
}

func TestOneShotRoundTripValueRange(t *testing.T) {
	frames := makeFrames(25, 300, 1)
	eps := 1e-3
	stream, err := Compress(frames, Config{ErrorBound: eps})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("frame count %d != %d", len(got), len(frames))
	}
	for axis := 0; axis < 3; axis++ {
		bound := eps * frameRange(frames[:DefaultBufferSize], axis)
		if bound == 0 {
			bound = eps // degenerate constant axis
		}
		for ti := range frames {
			want := axisSeries(frames[ti:ti+1], axis)[0]
			have := axisSeries(got[ti:ti+1], axis)[0]
			for i := range want {
				if e := math.Abs(want[i] - have[i]); e > bound+1e-15 {
					t.Fatalf("axis %d frame %d particle %d: err %v > %v", axis, ti, i, e, bound)
				}
			}
		}
	}
	if len(stream) >= len(frames)*300*3*8 {
		t.Errorf("no compression: %d bytes", len(stream))
	}
}

func TestAbsoluteMode(t *testing.T) {
	frames := makeFrames(12, 100, 2)
	stream, err := Compress(frames, Config{ErrorBound: 0.01, Mode: Absolute, Method: MT})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range frames {
		for i := range frames[ti].X {
			for axis := 0; axis < 3; axis++ {
				w := axisSeries(frames[ti:ti+1], axis)[0][i]
				h := axisSeries(got[ti:ti+1], axis)[0][i]
				if math.Abs(w-h) > 0.01 {
					t.Fatalf("axis %d: error %v", axis, math.Abs(w-h))
				}
			}
		}
	}
}

func TestStreamingAPI(t *testing.T) {
	frames := makeFrames(30, 200, 3)
	c, err := NewCompressor(Config{ErrorBound: 1e-4, Mode: Absolute})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecompressor()
	var rebuilt []Frame
	for _, batch := range Batch(frames, 10) {
		blk, err := c.CompressBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		out, err := d.DecompressBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, out...)
	}
	if len(rebuilt) != len(frames) {
		t.Fatalf("rebuilt %d frames, want %d", len(rebuilt), len(frames))
	}
	raw, comp := c.Stats()
	if raw != int64(30*200*3*8) {
		t.Errorf("raw stats = %d", raw)
	}
	if comp <= 0 || comp >= raw {
		t.Errorf("compressed stats = %d (raw %d)", comp, raw)
	}
	ms := c.Methods()
	for axis, m := range ms {
		if m != VQ && m != VQT && m != MT {
			t.Errorf("axis %d: unexpected method %v", axis, m)
		}
	}
}

func TestBatchHelper(t *testing.T) {
	frames := makeFrames(7, 5, 4)
	b := Batch(frames, 3)
	if len(b) != 3 || len(b[0]) != 3 || len(b[2]) != 1 {
		t.Errorf("batch shapes wrong: %d", len(b))
	}
	if got := Batch(frames, 0); len(got[0]) != DefaultBufferSize && len(got[0]) != 7 {
		t.Errorf("default batch size: %d", len(got[0]))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCompressor(Config{}); err == nil {
		t.Error("zero ErrorBound accepted")
	}
	if _, err := NewCompressor(Config{ErrorBound: -1}); err == nil {
		t.Error("negative ErrorBound accepted")
	}
	if _, err := NewCompressor(Config{ErrorBound: 1e-3, BufferSize: -2}); err == nil {
		t.Error("negative BufferSize accepted")
	}
}

func TestBadInputs(t *testing.T) {
	c, _ := NewCompressor(Config{ErrorBound: 1e-3})
	if _, err := c.CompressBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	ragged := []Frame{{X: []float64{1}, Y: []float64{1}, Z: []float64{1}},
		{X: []float64{1, 2}, Y: []float64{1, 2}, Z: []float64{1, 2}}}
	if _, err := c.CompressBatch(ragged); err == nil {
		t.Error("ragged batch accepted")
	}
	d := NewDecompressor()
	if _, err := d.DecompressBatch([]byte("bogus")); err == nil {
		t.Error("bogus block accepted")
	}
	if _, err := Decompress([]byte("bogus")); err == nil {
		t.Error("bogus stream accepted")
	}
}

func TestPropertyErrorBoundAllMethods(t *testing.T) {
	f := func(seed int64, mRaw, ebExp uint8) bool {
		m := Method(mRaw % 4)
		eb := math.Pow(10, -1-float64(ebExp%4))
		frames := makeFrames(8, 40, seed)
		stream, err := Compress(frames, Config{ErrorBound: eb, Mode: Absolute, Method: m, BufferSize: 4})
		if err != nil {
			return false
		}
		got, err := Decompress(stream)
		if err != nil || len(got) != len(frames) {
			return false
		}
		for ti := range frames {
			for axis := 0; axis < 3; axis++ {
				w := axisSeries(frames[ti:ti+1], axis)[0]
				h := axisSeries(got[ti:ti+1], axis)[0]
				for i := range w {
					if math.Abs(w[i]-h[i]) > eb {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
