package mdz

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	frames := makeFrames(27, 150, 41) // deliberately not a multiple of BS
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, comp := w.Stats()
	if raw != int64(27*150*3*8) {
		t.Errorf("raw stats %d", raw)
	}
	if comp <= 0 || comp >= raw {
		t.Errorf("comp stats %d (raw %d)", comp, raw)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(got), len(frames))
	}
	for ti := range frames {
		for i := range frames[ti].X {
			for axis, pair := range [][2][]float64{
				{frames[ti].X, got[ti].X}, {frames[ti].Y, got[ti].Y}, {frames[ti].Z, got[ti].Z},
			} {
				if d := math.Abs(pair[0][i] - pair[1][i]); d > 0.05 {
					t.Fatalf("frame %d axis %d particle %d: error %v", ti, axis, i, d)
				}
			}
		}
	}
	// Further reads return EOF.
	if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Errorf("post-drain read: %v", err)
	}
}

func TestWriterCloseIdempotentAndGuards(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Config{ErrorBound: 1e-3})
	f := makeFrames(1, 10, 42)[0]
	if err := w.WriteFrame(f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := w.WriteFrame(f); err == nil {
		t.Error("write after Close accepted")
	}
}

func TestWriterInvalidConfig(t *testing.T) {
	if _, err := NewWriter(io.Discard, Config{}); err == nil {
		t.Error("zero ErrorBound accepted")
	}
}

func TestReaderErrors(t *testing.T) {
	// Empty stream → EOF.
	if _, err := NewReader(bytes.NewReader(nil)).ReadFrame(); !errors.Is(err, io.EOF) {
		t.Errorf("empty: %v", err)
	}
	// Wrong magic.
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))).ReadFrame(); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated mid-block.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 2})
	for _, f := range makeFrames(4, 20, 43) {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r := NewReader(bytes.NewReader(full[:len(full)-7]))
	var err error
	for err == nil {
		_, err = r.ReadFrame()
	}
	if errors.Is(err, io.EOF) {
		t.Error("truncation silently reported as EOF")
	}
}

func TestEmptyWriterProducesEmptyOutput(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Config{ErrorBound: 1e-3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty stream wrote %d bytes", buf.Len())
	}
}
