package mdz

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

// fuzzSeedStream builds a small valid v2 stream for the corpus.
func fuzzSeedStream(tb testing.TB, interval int) []byte {
	tb.Helper()
	frames := makeFrames(6, 30, 61)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 2, CheckpointInterval: interval})
	if err != nil {
		tb.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzStreamReader throws arbitrary bytes at the whole container decode
// path, in both strict and Resync modes. The reader must never panic, and
// every failure must carry a package sentinel (or be the io.Reader's own
// error — impossible here, the source is a bytes.Reader).
func FuzzStreamReader(f *testing.F) {
	v2 := fuzzSeedStream(f, 1)
	f.Add(v2)
	f.Add(fuzzSeedStream(f, 0))
	// Corrupted variants steer the fuzzer toward the resync machinery.
	flip := append([]byte(nil), v2...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip)
	f.Add(v2[:3*len(v2)/4])
	// A v1 stream (legacy path), including one around the seed fixture.
	frames := makeFrames(4, 25, 62)
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	blk, err := c.CompressBatch(frames)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buildV1Stream(blk))
	if seedBlk, err := os.ReadFile("testdata/seed_block_v1.bin"); err == nil {
		f.Add(buildV1Stream(seedBlk))
	}
	f.Add([]byte{})
	f.Add([]byte("MD"))
	f.Add([]byte(streamMagicV2))
	f.Add(append([]byte(streamMagicV2), frameSync[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound per-input work; framing logic doesn't care about size
		}
		for _, resync := range []bool{false, true} {
			r := NewReaderWith(bytes.NewReader(data), ReaderOptions{Workers: 1, Resync: resync})
			n := 0
			for {
				_, err := r.ReadFrame()
				if err == nil {
					if n++; n > 1<<16 {
						t.Fatalf("resync=%v: reader yielded over %d frames from %d bytes", resync, n, len(data))
					}
					continue
				}
				if !errors.Is(err, io.EOF) &&
					!errors.Is(err, ErrCorruptBlock) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrStateDesync) {
					t.Fatalf("resync=%v: untyped error: %v", resync, err)
				}
				// Errors must be sticky: the next read repeats them.
				if _, err2 := r.ReadFrame(); !errors.Is(err2, err) && err2 == nil {
					t.Fatalf("resync=%v: error not sticky", resync)
				}
				break
			}
			// Stats must be self-consistent even on garbage.
			st := r.SalvageStats()
			if st.CorruptFrames < 0 || st.SkippedBytes < 0 || st.DroppedFrames < 0 {
				t.Fatalf("resync=%v: negative stats: %+v", resync, st)
			}
		}
	})
}

// FuzzCheckpointUnmarshal hammers the checkpoint payload parser, which in
// Resync mode sees attacker-shaped bytes that passed a CRC.
func FuzzCheckpointUnmarshal(f *testing.F) {
	frames := makeFrames(4, 30, 63)
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := c.CompressBatch(frames); err != nil {
		f.Fatal(err)
	}
	st, err := c.ExportState()
	if err != nil {
		f.Fatal(err)
	}
	payload, err := st.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add([]byte{checkpointVersion})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got := &CheckpointState{}
		if err := got.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, ErrCorruptBlock) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrStateDesync) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Whatever parses must re-marshal without error.
		if _, err := got.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal of accepted checkpoint failed: %v", err)
		}
	})
}

// FuzzDecodeBatch throws arbitrary bytes at the block decoder under a tight
// decode-memory budget. Every outcome must be a typed sentinel — corrupt,
// truncated, desync or budget rejection — and forged giant lengths must be
// rejected by accounting, never by crashing or allocating.
func FuzzDecodeBatch(f *testing.F) {
	seed := func(cfg Config, m, n int) []byte {
		frames := makeFrames(m, n, 64)
		c, err := NewCompressor(cfg)
		if err != nil {
			f.Fatal(err)
		}
		blk, err := c.CompressBatch(frames)
		if err != nil {
			f.Fatal(err)
		}
		return blk
	}
	v2 := seed(Config{ErrorBound: 1e-3}, 6, 40)
	f.Add(v2)
	f.Add(seed(Config{ErrorBound: 1e-3, FormatVersion: 3}, 6, 40))
	f.Add(seed(Config{ErrorBound: 1e-3, Shards: 3}, 8, 96))
	flip := append([]byte(nil), v2...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	f.Add(v2[:len(v2)/2])
	f.Add([]byte("MDZS"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		d := NewDecompressorWith(DecompressorOptions{Workers: 1, MaxDecodeBytes: 1 << 20})
		_, err := d.DecompressBatch(data)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrCorruptBlock) && !errors.Is(err, ErrTruncated) &&
			!errors.Is(err, ErrStateDesync) && !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("untyped error: %v", err)
		}
	})
}
