package mdz

import (
	"bytes"
	"errors"
	"testing"
)

// TestCorruptPathsReturnSentinels feeds every corrupt-input path a
// malformed input and asserts the error matches one of the package
// sentinels via errors.Is, so callers can classify failures without
// string matching.
func TestCorruptPathsReturnSentinels(t *testing.T) {
	frames := makeFrames(6, 80, 3)
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := c.CompressBatch(frames[:3])
	if err != nil {
		t.Fatal(err)
	}
	blk2, err := c.CompressBatch(frames[3:])
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Compress(frames, Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}

	isSentinel := func(err error) bool {
		return errors.Is(err, ErrCorruptBlock) || errors.Is(err, ErrTruncated) || errors.Is(err, ErrStateDesync)
	}

	cases := []struct {
		name string
		err  func() error
		want error // specific sentinel, or nil for "any sentinel"
	}{
		{"block: bad magic", func() error {
			_, err := NewDecompressor().DecompressBatch([]byte("XXXX rest"))
			return err
		}, ErrCorruptBlock},
		{"block: truncated footer", func() error {
			_, err := NewDecompressor().DecompressBatch(blk[:6])
			return err
		}, ErrTruncated},
		{"block: checksum flip", func() error {
			bad := append([]byte(nil), blk...)
			bad[len(bad)/2] ^= 1
			_, err := NewDecompressor().DecompressBatch(bad)
			return err
		}, ErrCorruptBlock},
		{"block: truncated body", func() error {
			_, err := NewDecompressor().DecompressBatch(blk[:len(blk)-20])
			return err
		}, nil},
		{"block: out of order", func() error {
			_, err := NewDecompressor().DecompressBatch(blk2)
			return err
		}, nil}, // ErrStateDesync for MT-bearing streams, else decodes
		{"one-shot: bad magic", func() error {
			_, err := Decompress([]byte("NOPE...."))
			return err
		}, ErrCorruptBlock},
		{"one-shot: truncated", func() error {
			_, err := Decompress(oneShot[:len(oneShot)-9])
			return err
		}, nil},
		{"stream: bad magic", func() error {
			_, err := NewReader(bytes.NewReader([]byte("GARBAGE!"))).ReadFrame()
			return err
		}, ErrCorruptBlock},
		{"stream: partial magic", func() error {
			_, err := NewReader(bytes.NewReader([]byte("MD"))).ReadFrame()
			return err
		}, ErrTruncated},
		{"checkpoint: garbage", func() error {
			return new(CheckpointState).UnmarshalBinary([]byte{9, 9, 9})
		}, ErrCorruptBlock},
		{"checkpoint: empty", func() error {
			return new(CheckpointState).UnmarshalBinary(nil)
		}, ErrCorruptBlock},
	}
	for _, tc := range cases {
		err := tc.err()
		if tc.want == nil {
			if err != nil && !isSentinel(err) {
				t.Errorf("%s: error not typed: %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestOutOfOrderBlocksDesync pins the ErrStateDesync path: an MT block
// presented to a fresh decompressor must be refused as out-of-order.
func TestOutOfOrderBlocksDesync(t *testing.T) {
	frames := makeFrames(6, 80, 19)
	c, err := NewCompressor(Config{ErrorBound: 1e-3, Method: MT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompressBatch(frames[:3]); err != nil {
		t.Fatal(err)
	}
	blk2, err := c.CompressBatch(frames[3:])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecompressor().DecompressBatch(blk2); !errors.Is(err, ErrStateDesync) {
		t.Errorf("out-of-order MT block: err = %v, want ErrStateDesync", err)
	}
}

// TestCorruptBlockErrorShape checks the typed error's fields and matching
// behavior.
func TestCorruptBlockErrorShape(t *testing.T) {
	cause := errors.New("inner")
	e := &CorruptBlockError{Block: 7, Offset: 1234, Cause: cause}
	if !errors.Is(e, ErrCorruptBlock) {
		t.Error("CorruptBlockError does not match ErrCorruptBlock")
	}
	if !errors.Is(e, cause) {
		t.Error("CorruptBlockError does not unwrap to its cause")
	}
	var got *CorruptBlockError
	if !errors.As(error(e), &got) || got.Block != 7 || got.Offset != 1234 {
		t.Error("errors.As lost the block/offset fields")
	}
}
