package mdz

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

// buildFramedStream compresses frames into a v2 framed stream for tests.
func buildFramedStream(t *testing.T, frames []Frame, interval int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMaxDecodeBytesGovernsDecompressBatch checks the decode memory
// governor end to end: a starved budget rejects a pristine block with the
// typed sentinel (and counts it), while a generous one decodes normally.
func TestMaxDecodeBytesGovernsDecompressBatch(t *testing.T) {
	frames := makeFrames(8, 512, 63)
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := c.CompressBatch(frames)
	if err != nil {
		t.Fatal(err)
	}

	d := NewDecompressorWith(DecompressorOptions{MaxDecodeBytes: 64, Telemetry: true})
	_, err = d.DecompressBatch(blk)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("starved decode err = %v, want ErrBudgetExceeded", err)
	}
	if errors.Is(err, ErrCorruptBlock) {
		t.Error("budget rejection misclassified as corruption")
	}
	if got := d.Telemetry().Counters["budget.rejections"]; got == 0 {
		t.Error("budget.rejections not counted")
	}

	d2 := NewDecompressorWith(DecompressorOptions{MaxDecodeBytes: 1 << 30})
	out, err := d2.DecompressBatch(blk)
	if err != nil {
		t.Fatalf("generous budget rejected a pristine block: %v", err)
	}
	if len(out) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(out), len(frames))
	}
}

// TestBudgetReleasedBetweenBlocks: the budget governs in-flight decode
// state, not cumulative throughput — a ceiling that fits one block must
// keep fitting any number of sequential blocks.
func TestBudgetReleasedBetweenBlocks(t *testing.T) {
	frames := makeFrames(12, 256, 66)
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecompressorWith(DecompressorOptions{MaxDecodeBytes: 1 << 20})
	for i, b := range Batch(frames, 4) {
		blk, err := c.CompressBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.DecompressBatch(blk); err != nil {
			t.Fatalf("block %d rejected — budget leaked across blocks: %v", i, err)
		}
	}
}

// TestReaderMaxDecodeBytes drives the governor through the stream Reader:
// strict mode surfaces the typed rejection, Resync mode accounts for the
// undeliverable frames and terminates cleanly.
func TestReaderMaxDecodeBytes(t *testing.T) {
	frames := makeFrames(8, 512, 67)
	stream := buildFramedStream(t, frames, 1)

	r := NewReaderWith(bytes.NewReader(stream), ReaderOptions{MaxDecodeBytes: 64})
	if _, err := r.ReadFrame(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("strict err = %v, want ErrBudgetExceeded", err)
	}

	r = NewReaderWith(bytes.NewReader(stream), ReaderOptions{MaxDecodeBytes: 64, Resync: true})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("resync ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("delivered %d frames under a starved budget", len(got))
	}
	if st := r.SalvageStats(); st.CorruptFrames == 0 {
		t.Errorf("starved frames unaccounted: %+v", st)
	}

	r = NewReaderWith(bytes.NewReader(stream), ReaderOptions{MaxDecodeBytes: 1 << 30})
	got, err = r.ReadAll()
	if err != nil || len(got) != len(frames) {
		t.Fatalf("generous budget: %d frames, %v; want %d, nil", len(got), err, len(frames))
	}
}

// TestReaderContextCancelled: a Reader with a cancelled context reports the
// cancellation itself, not a corruption sentinel — in both modes.
func TestReaderContextCancelled(t *testing.T) {
	frames := makeFrames(8, 128, 68)
	stream := buildFramedStream(t, frames, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, resync := range []bool{false, true} {
		r := NewReaderWith(bytes.NewReader(stream), ReaderOptions{Context: ctx, Resync: resync})
		_, err := r.ReadFrame()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("resync=%v: err = %v, want context.Canceled", resync, err)
		}
		if errors.Is(err, ErrCorruptBlock) {
			t.Errorf("resync=%v: cancellation misclassified as corruption", resync)
		}
	}
}

// TestReaderResyncAllSyncBytes: a stream body that is nothing but repeated
// sync markers is the worst case for the resync scanner — every offset
// looks like a frame start and every parse fails. The reader must
// terminate, deliver nothing and account the damage.
func TestReaderResyncAllSyncBytes(t *testing.T) {
	body := bytes.Repeat(frameSync[:], 4096)
	data := append([]byte(streamMagicV2), body...)
	r := NewReaderWith(bytes.NewReader(data), ReaderOptions{Resync: true})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("conjured %d frames out of sync markers", len(got))
	}
	st := r.SalvageStats()
	if st.CorruptFrames == 0 || !st.Truncated {
		t.Errorf("damage unaccounted: %+v", st)
	}
	// Strict mode must terminate with a typed failure just as promptly.
	r = NewReaderWith(bytes.NewReader(data), ReaderOptions{})
	if _, err := r.ReadFrame(); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("strict err = %v, want ErrCorruptBlock", err)
	}
}

// TestReaderEmptyAndTinyStreams: zero-byte and sub-magic inputs end with
// io.EOF or a typed truncation, never a hang or panic, in both modes.
func TestReaderEmptyAndTinyStreams(t *testing.T) {
	for _, resync := range []bool{false, true} {
		r := NewReaderWith(bytes.NewReader(nil), ReaderOptions{Resync: resync})
		if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
			t.Fatalf("resync=%v: empty stream err = %v, want io.EOF", resync, err)
		}
		r = NewReaderWith(bytes.NewReader([]byte("MD")), ReaderOptions{Resync: resync})
		if _, err := r.ReadFrame(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("resync=%v: cut magic err = %v, want ErrTruncated", resync, err)
		}
	}
}
