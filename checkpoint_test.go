package mdz

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestCheckpointStateSerializationRoundTrip checks MarshalBinary against
// UnmarshalBinary bit-for-bit, including non-finite level origins and an
// empty reference axis.
func TestCheckpointStateSerializationRoundTrip(t *testing.T) {
	st := &CheckpointState{Batch: 17}
	st.Axes[0] = AxisState{
		ErrorBound: 1e-3, QuantScale: 9, K: 12,
		LevelDistance: 3.0001, LevelOrigin: -5.25,
		Method: MT, Ref: []float64{1.5, -2.25, 0, math.Pi},
	}
	st.Axes[1] = AxisState{
		ErrorBound: 1e-3, QuantScale: 9, K: 1,
		LevelDistance: 1, LevelOrigin: 7.25,
		Method: VQ, Ref: []float64{7.25, 7.25},
	}
	st.Axes[2] = AxisState{ErrorBound: 2e-3, QuantScale: 10, Method: VQT}

	payload, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := &CheckpointState{}
	if err := got.UnmarshalBinary(payload); err != nil {
		t.Fatal(err)
	}
	if got.Batch != st.Batch {
		t.Errorf("batch = %d, want %d", got.Batch, st.Batch)
	}
	for axis := range st.Axes {
		a, b := &st.Axes[axis], &got.Axes[axis]
		if a.ErrorBound != b.ErrorBound || a.QuantScale != b.QuantScale ||
			a.K != b.K || a.LevelDistance != b.LevelDistance ||
			a.LevelOrigin != b.LevelOrigin || a.Method != b.Method {
			t.Errorf("axis %d scalar state diverged: %+v vs %+v", axis, a, b)
		}
		if len(a.Ref) != len(b.Ref) {
			t.Fatalf("axis %d ref length %d, want %d", axis, len(b.Ref), len(a.Ref))
		}
		for i := range a.Ref {
			if math.Float64bits(a.Ref[i]) != math.Float64bits(b.Ref[i]) {
				t.Errorf("axis %d ref[%d] diverged", axis, i)
			}
		}
	}

	// Every single-byte corruption must be detected or at worst decode
	// without panicking; trailing garbage must be rejected.
	if err := got.UnmarshalBinary(append(payload, 0)); !errors.Is(err, ErrCorruptBlock) {
		t.Errorf("trailing byte: err=%v, want ErrCorruptBlock", err)
	}
	for i := 0; i < len(payload) && i < 8; i++ {
		trunc := payload[:i]
		if err := new(CheckpointState).UnmarshalBinary(trunc); err == nil {
			t.Errorf("truncated payload (%d bytes) accepted", i)
		}
	}
}

// TestCompressorStateResume checks the writer-side contract behind
// checkpoints: a fresh Compressor importing exported state continues the
// stream with byte-identical blocks, per method and shard count.
func TestCompressorStateResume(t *testing.T) {
	frames := makeFrames(20, 180, 5)
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		for _, shards := range []int{1, 4} {
			cfg := Config{ErrorBound: 1e-3, Method: m, Shards: shards}
			full, err := NewCompressor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := full.CompressBatch(frames[i*5 : (i+1)*5]); err != nil {
					t.Fatalf("%v/%d: batch %d: %v", m, shards, i, err)
				}
			}
			st, err := full.ExportState()
			if err != nil {
				t.Fatalf("%v/%d: export: %v", m, shards, err)
			}
			// Pass the state through its wire format, as Writer does.
			payload, err := st.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			wire := &CheckpointState{}
			if err := wire.UnmarshalBinary(payload); err != nil {
				t.Fatal(err)
			}

			resumed, err := NewCompressor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.ImportState(wire); err != nil {
				t.Fatalf("%v/%d: import: %v", m, shards, err)
			}
			for i := 2; i < 4; i++ {
				want, err := full.CompressBatch(frames[i*5 : (i+1)*5])
				if err != nil {
					t.Fatal(err)
				}
				got, err := resumed.CompressBatch(frames[i*5 : (i+1)*5])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%v/%d: batch %d diverged after checkpoint resume", m, shards, i)
				}
			}
		}
	}
}

// TestDecompressorStateReseed checks the reader-side contract: importing a
// checkpoint lets a fresh Decompressor decode later blocks bit-identically
// to a decoder that saw the whole stream.
func TestDecompressorStateReseed(t *testing.T) {
	frames := makeFrames(15, 160, 11)
	c, err := NewCompressor(Config{ErrorBound: 1e-3, Method: ADP})
	if err != nil {
		t.Fatal(err)
	}
	var blks [][]byte
	for i := 0; i < 3; i++ {
		blk, err := c.CompressBatch(frames[i*5 : (i+1)*5])
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, blk)
	}
	st, err := c.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	cont := NewDecompressor()
	var want []Frame
	for _, blk := range blks {
		out, err := cont.DecompressBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		want = out
	}
	if !cont.seeded() {
		t.Fatal("continuous decompressor not seeded after block 0")
	}
	if !cont.stateMatches(st) {
		t.Error("continuous decoder state disagrees with exported checkpoint")
	}

	fresh := NewDecompressor()
	if fresh.seeded() {
		t.Fatal("fresh decompressor claims to be seeded")
	}
	if err := fresh.ImportState(st); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.DecompressBatch(blks[2])
	if err != nil {
		t.Fatalf("reseeded decode: %v", err)
	}
	for ti := range want {
		for i := range want[ti].X {
			if want[ti].X[i] != got[ti].X[i] || want[ti].Y[i] != got[ti].Y[i] || want[ti].Z[i] != got[ti].Z[i] {
				t.Fatalf("reseeded decode diverged at t=%d i=%d", ti, i)
			}
		}
	}
}

// TestCheckpointGuards covers the refusal paths of the state APIs.
func TestCheckpointGuards(t *testing.T) {
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExportState(); err == nil {
		t.Error("ExportState before first batch succeeded")
	}
	if _, err := c.CompressBatch(makeFrames(3, 50, 1)); err != nil {
		t.Fatal(err)
	}
	st, err := c.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ImportState(st); !errors.Is(err, ErrStateDesync) {
		t.Errorf("ImportState on used compressor: err=%v, want ErrStateDesync", err)
	}

	// A checkpoint with a missing axis reference cannot reseed a reader.
	broken := *st
	broken.Axes[1].Ref = nil
	if err := NewDecompressor().ImportState(&broken); !errors.Is(err, ErrStateDesync) {
		t.Errorf("ImportState without axis ref: err=%v, want ErrStateDesync", err)
	}
}
